"""Job-level scheduling above the pipeline engine (``repro.service``).

One :class:`JobScheduler` drives N concurrent supernet-training jobs
over a shared fleet owned by a :class:`~repro.service.manager.
ClusterManager`.  Jobs arrive on a **service virtual clock** (the same
discrete-event machinery the engine uses, one level up), wait in an
admission queue, and run as a sequence of *segments*:

* a segment trains ``quantum`` consecutive subnets of the job's stream
  on a leased GPU set — a fresh :class:`~repro.engines.pipeline.
  PipelineEngine` per segment over the job's **persistent** functional
  plane, with the stream slice resumed at its original sequence IDs
  (exactly the elastic-rescale construction of
  :mod:`repro.ft.recovery`);
* a segment boundary is a **consistent cut**: the engine has drained, so
  the plane holds precisely the sequential prefix state after the
  segment's last subnet.  All scheduling decisions — grow, shrink,
  preemption — take effect only at these cuts, because they are the only
  points where a job can change shape without changing its bits.

Allocation is fair-share weighted by priority: every runnable job first
reserves ``min_gpus`` in precedence order (higher priority first, FIFO
within a priority), then the remaining GPUs are apportioned in
proportion to priority, capped at each job's ``max_gpus``, with
deterministic largest-remainder rounding.  Jobs that cannot fit wait in
the admission queue; a running job squeezed to zero at a boundary is
preempted back into the queue and resumes later from its cut.

**Per-tenant determinism.**  Under CSP a job's final weights are a pure
function of its subnet stream (Definition 1), and segment boundaries are
consistent cuts — so a job's loss digest is bitwise identical to its
solo run *regardless of co-tenants, allocation history, or mid-run
resizes*.  Jobs under other sync modes (ASP/BSP/SSP) have no consistent
cuts mid-stream; the scheduler therefore runs them **rigid**: one
segment, fixed allocation, no elasticity — their digest then matches a
solo run at the same GPU count, but they cannot be preempted or
resized.  ``verify_solo`` re-runs every job alone and checks both
claims.

**Fleet unreliability.**  :meth:`JobScheduler.inject_fleet_faults` arms
a fleet-scoped :class:`~repro.ft.faults.FaultSchedule`
(``slot_preempt`` / ``node_down``): each event revokes the struck
slots' leases through :meth:`~repro.service.manager.ClusterManager.
revoke` and the scheduler reacts *at the next consistent cut* —

* an **elastic (CSP)** job's in-flight segment drains to its quantum
  cut (the revocation grace window), its deferred release of the
  revoked lease is idempotent, and the next ``fair_share`` pass replans
  it onto the shrunken fleet; the carried plane makes the digest
  provably unchanged;
* a **rigid** (non-CSP) job has no mid-stream cut: its segment is
  aborted and discarded, and the job re-queues with exponential backoff
  to restart from subnet 0 — until its ``max_restarts`` budget runs
  out, at which point *that job* fails (status ``failed``, structured
  failure record in the report) while the fleet keeps running;
* struck slots sit in the manager's down pool for the fault's
  ``duration_ms``, then return and trigger a replan.

Everything is deterministic: identical service configs produce
byte-identical reports (the CI ``service-smoke`` gate ``cmp``'s two
runs), and the service timeline is itself a schema-validated
:class:`~repro.sim.trace.ExecutionTrace` carrying the ``job_*`` and
``lease_revoke`` event kinds documented in ``docs/TRACING.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines import system_by_name
from repro.config import SystemConfig
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.errors import ServiceError
from repro.ft.availability import failure_summary
from repro.ft.faults import FLEET_KINDS, NODE_DOWN, FaultEvent, FaultSchedule
from repro.ft.recovery import (
    build_stream,
    default_optimizer,
    rewarm_prefetch,
    run_uninterrupted,
)
from repro.service.manager import ClusterManager
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import SimulationEngine
from repro.sim.trace import ExecutionTrace
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import SearchSpace, get_search_space
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = [
    "JobSpec",
    "JobScheduler",
    "fair_share",
    "run_service",
    "format_service_report",
    "service_report_json",
]

_JOB_KEYS = frozenset(
    {
        "name",
        "space",
        "space_overrides",
        "system",
        "overrides",
        "subnets",
        "seed",
        "priority",
        "submit_ms",
        "min_gpus",
        "max_gpus",
        "batch",
        "functional_batch",
        "stream_kind",
    }
)


@dataclass(frozen=True)
class JobSpec:
    """One tenant's training request."""

    name: str
    space: str
    system: str = "NASPipe"
    subnets: int = 16
    seed: int = 2022
    #: fair-share weight and admission precedence (>= 1)
    priority: int = 1
    #: service virtual time of arrival
    submit_ms: float = 0.0
    #: smallest allocation the job will accept
    min_gpus: int = 1
    #: largest allocation the job can use
    max_gpus: int = 8
    batch: Optional[int] = None
    functional_batch: int = 8
    stream_kind: str = "spos"
    space_overrides: Optional[Mapping] = None
    #: system-config overrides forwarded to :func:`system_by_name`
    overrides: Optional[Mapping] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("a job needs a non-empty name")
        if self.subnets < 1:
            raise ServiceError(f"{self.name}: subnets must be >= 1")
        if self.priority < 1:
            raise ServiceError(f"{self.name}: priority must be >= 1")
        if self.min_gpus < 1 or self.max_gpus < self.min_gpus:
            raise ServiceError(
                f"{self.name}: need 1 <= min_gpus <= max_gpus, got "
                f"[{self.min_gpus}, {self.max_gpus}]"
            )
        if self.submit_ms < 0:
            raise ServiceError(f"{self.name}: submit_ms must be >= 0")

    @classmethod
    def from_payload(cls, payload: Mapping) -> "JobSpec":
        """Build from a ``serve`` config entry; unknown keys are loud
        errors (silent typos would silently change a tenant's run)."""
        unknown = sorted(set(payload) - _JOB_KEYS)
        if unknown:
            raise ServiceError(f"unknown job config keys: {unknown}")
        return cls(**payload)


@dataclass
class _Segment:
    """One engine incarnation of a job."""

    start_ms: float
    end_ms: float
    gpus: int
    slots: Tuple[int, ...]
    cursor_from: int
    cursor_to: int
    makespan_ms: float
    resize_overhead_ms: float = 0.0


@dataclass
class _PendingSegment:
    """An in-flight segment: the engine result is held back until the
    segment's virtual end — the consistent cut — so a fleet fault can
    still abort it (rigid jobs) before any state merges."""

    result: object  # PipelineResult
    lease: object  # DeviceLease
    end_cursor: int
    start_ms: float
    end_ms: float
    granted: int
    delay: float
    handle: object  # cancellable sim-event handle


@dataclass
class _JobState:
    """Scheduler-internal mutable state of one job."""

    spec: JobSpec
    index: int  # arrival order (submission call order)
    config: SystemConfig = None  # type: ignore[assignment]
    space: SearchSpace = None  # type: ignore[assignment]
    supernet: Supernet = None  # type: ignore[assignment]
    plane: FunctionalPlane = None  # type: ignore[assignment]
    subnets: List[Subnet] = field(default_factory=list)
    #: pending (pre-arrival) | queued | boundary | running | done | failed
    status: str = "pending"
    cursor: int = 0
    #: allocation cap after fleet/space clamping
    gpus_cap: int = 0
    last_gpus: int = 0
    ever_ran: bool = False
    started_ms: Optional[float] = None
    finished_ms: Optional[float] = None
    gpu_ms: float = 0.0
    overhead_ms: float = 0.0
    preemptions: int = 0
    resizes: int = 0
    losses: Dict[int, float] = field(default_factory=dict)
    digest: Optional[str] = None
    segments: List[_Segment] = field(default_factory=list)
    #: the segment currently in flight (result deferred to its cut)
    pending: Optional[_PendingSegment] = None
    #: rigid-restart bookkeeping (fleet revocations)
    restarts: int = 0
    not_before: float = 0.0
    lost_virtual_ms: float = 0.0
    failure: Optional[Dict] = None

    @property
    def preemptible(self) -> bool:
        """Only CSP jobs have consistent cuts mid-stream; everything
        else runs rigid (one segment, fixed size)."""
        return self.config.sync == "csp"

    @property
    def remaining(self) -> int:
        return len(self.subnets) - self.cursor


def fair_share(
    total: int, demands: Sequence[Tuple[str, int, int, int]]
) -> Dict[str, int]:
    """Priority-weighted fair-share apportionment of ``total`` GPUs.

    ``demands`` is ``(name, priority, min_gpus, max_gpus)`` in precedence
    order (higher priority first, then arrival).  Admission first
    reserves each job's minimum in precedence order — a job whose
    minimum no longer fits gets 0 (waits).  The leftover is then split
    proportionally to priority among admitted jobs, capped at their
    maxima, with deterministic largest-remainder rounding (capped floors
    first, then single GPUs in precedence order).
    """
    alloc: Dict[str, int] = {}
    admitted: List[Tuple[str, int, int, int]] = []
    left = total
    for name, priority, min_gpus, max_gpus in demands:
        if min_gpus <= left:
            alloc[name] = min_gpus
            left -= min_gpus
            admitted.append((name, priority, min_gpus, max_gpus))
        else:
            alloc[name] = 0
    while left > 0:
        open_ = [d for d in admitted if alloc[d[0]] < d[3]]
        if not open_:
            break
        weight = sum(d[1] for d in open_)
        gave = 0
        for name, priority, _min, max_gpus in open_:
            extra = min((left * priority) // weight, max_gpus - alloc[name])
            alloc[name] += extra
            gave += extra
        if gave == 0:
            # floors all rounded to zero: hand out single GPUs in
            # precedence order until the remainder is gone
            for name, _priority, _min, max_gpus in open_:
                if gave == left:
                    break
                if alloc[name] < max_gpus:
                    alloc[name] += 1
                    gave += 1
        if gave == 0:  # pragma: no cover - guarded by open_ check
            break
        left -= gave
    return alloc


class JobScheduler:
    """Admission queue + fair-share allocator + elastic segment driver."""

    def __init__(
        self,
        manager: ClusterManager,
        *,
        quantum: int = 8,
        resize_cost_ms: float = 50.0,
        rewarm: bool = True,
        max_restarts: int = 3,
        requeue_backoff_ms: float = 25.0,
        slots_per_node: int = 4,
        telemetry=None,
    ) -> None:
        if quantum < 1:
            raise ServiceError(f"quantum must be >= 1, got {quantum}")
        if max_restarts < 0:
            raise ServiceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if requeue_backoff_ms <= 0:
            raise ServiceError(
                f"requeue_backoff_ms must be > 0, got {requeue_backoff_ms}"
            )
        if slots_per_node < 1:
            raise ServiceError(
                f"slots_per_node must be >= 1, got {slots_per_node}"
            )
        self.manager = manager
        self.quantum = quantum
        #: virtual downtime charged when a job changes shape at a cut
        #: (checkpoint hand-off + engine respawn, as in RecoverySpec)
        self.resize_cost_ms = resize_cost_ms
        self.rewarm = rewarm
        #: restart budget for rigid jobs aborted by lease revocation
        self.max_restarts = max_restarts
        #: first re-queue backoff; doubles per consecutive restart
        self.requeue_backoff_ms = requeue_backoff_ms
        #: contiguous slot-group size a ``node_down`` takes out
        self.slots_per_node = slots_per_node
        self.trace = ExecutionTrace(num_gpus=manager.total_gpus)
        self.sim = SimulationEngine(trace=self.trace)
        #: the manager meters slot holdings on this plane's virtual clock
        manager.clock = lambda: self.sim.now
        #: optional :class:`~repro.obs.telemetry.TelemetryHub` — pure
        #: observer (trace listener + scrape events + usage observer);
        #: arming it changes no scheduling decision and no report byte
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach_service(self)
        self._jobs: Dict[str, _JobState] = {}
        self._plan_pending = False
        self._ran = False
        self.fleet_faults = 0
        self._fleet_mask: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> None:
        """Register a job; it arrives on the service clock at
        ``spec.submit_ms``."""
        if self._ran:
            raise ServiceError("scheduler already ran; build a fresh one")
        if spec.name in self._jobs:
            raise ServiceError(f"duplicate job name {spec.name!r}")
        state = _JobState(spec=spec, index=len(self._jobs))
        space = get_search_space(spec.space)
        if spec.space_overrides:
            space = space.scaled(**dict(spec.space_overrides))
        state.space = space
        state.config = system_by_name(spec.system, **dict(spec.overrides or {}))
        state.gpus_cap = min(
            spec.max_gpus, self.manager.total_gpus, space.num_blocks
        )
        if spec.min_gpus > state.gpus_cap:
            raise ServiceError(
                f"{spec.name}: min_gpus={spec.min_gpus} can never be "
                f"satisfied (fleet {self.manager.total_gpus}, "
                f"{space.num_blocks} choice blocks, max_gpus {spec.max_gpus})"
            )
        self._jobs[spec.name] = state
        self.sim.schedule(
            spec.submit_ms,
            lambda: self._on_submit(spec.name),
            label=f"submit {spec.name}",
        )

    def _on_submit(self, name: str) -> None:
        state = self._jobs[name]
        state.status = "queued"
        # lazy build at arrival: the plane/stream exist only once the
        # job is actually in the system
        state.supernet = Supernet(state.space)
        state.plane = FunctionalPlane(
            state.supernet,
            _seed_tree(state.spec.seed),
            functional_batch=state.spec.functional_batch,
            optimizer=default_optimizer(),
        )
        state.subnets = list(
            build_stream(
                state.space,
                state.spec.seed,
                state.spec.subnets,
                state.spec.stream_kind,
            )
        )
        spec = state.spec
        self.trace.record_event(
            "job_submit",
            self.sim.now,
            job=spec.name,
            priority=spec.priority,
            subnets=spec.subnets,
            min_gpus=spec.min_gpus,
            max_gpus=state.gpus_cap,
        )
        self._request_plan()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _request_plan(self) -> None:
        """Coalesce same-instant wake-ups into one allocation pass: the
        plan event runs at low priority, after every submission and
        segment completion due at this timestamp has been processed."""
        if not self._plan_pending:
            self._plan_pending = True
            self.sim.schedule(self.sim.now, self._plan, priority=10, label="plan")

    def _candidates(self) -> List[_JobState]:
        """Runnable jobs in precedence order (-priority, arrival).
        Re-queued rigid jobs sit out their backoff (``not_before``)."""
        now = self.sim.now
        runnable = [
            state
            for state in self._jobs.values()
            if state.status in ("queued", "boundary")
            and now >= state.not_before
        ]
        return sorted(runnable, key=lambda s: (-s.spec.priority, s.index))

    def _plan(self) -> None:
        self._plan_pending = False
        candidates = self._candidates()
        if not candidates:
            return
        alloc = fair_share(
            self.manager.available_gpus,
            [
                (s.spec.name, s.spec.priority, s.spec.min_gpus, s.gpus_cap)
                for s in candidates
            ],
        )
        for state in candidates:
            granted = alloc[state.spec.name]
            if granted == 0:
                if state.status == "boundary":
                    # squeezed out by higher-priority tenants: back to
                    # the admission queue, to resume from the cut
                    state.status = "queued"
                    state.preemptions += 1
                    self.trace.record_event(
                        "job_preempt",
                        self.sim.now,
                        job=state.spec.name,
                        gpus=state.last_gpus,
                        cut=state.cursor,
                    )
                continue
            self._start_segment(state, granted)

    # ------------------------------------------------------------------
    # segments
    # ------------------------------------------------------------------
    def _start_segment(self, state: _JobState, granted: int) -> None:
        now = self.sim.now
        spec = state.spec
        lease = self.manager.acquire(spec.name, granted)
        delay = 0.0
        if state.status == "queued":
            if state.ever_ran:
                # resuming after preemption pays the same respawn cost
                # as a resize (fresh engine over returned hardware)
                delay = self.resize_cost_ms
            self.trace.record_event(
                "job_start",
                now,
                job=spec.name,
                gpus=granted,
                slots=",".join(str(s) for s in lease.slots),
                cut=state.cursor,
            )
            if state.started_ms is None:
                state.started_ms = now
        elif granted != state.last_gpus:
            delay = self.resize_cost_ms
            state.resizes += 1
            self.trace.record_event(
                "job_resize",
                now,
                job=spec.name,
                gpus_from=state.last_gpus,
                gpus_to=granted,
                cut=state.cursor,
            )
        end_cursor = (
            min(state.cursor + self.quantum, len(state.subnets))
            if state.preemptible
            else len(state.subnets)
        )
        stream = SubnetStream(
            state.subnets[state.cursor : end_cursor], start=state.cursor
        )
        engine = PipelineEngine(
            state.supernet,
            stream,
            state.config,
            lease,
            batch=spec.batch,
            functional=state.plane,
        )
        if delay > 0.0 and self.rewarm:
            rewarm_prefetch(engine, state.subnets[state.cursor])
        result = engine.run()
        start_ms = now + delay
        end_ms = start_ms + result.makespan_ms
        state.status = "running"
        state.ever_ran = True
        state.last_gpus = granted
        # The result merges only at the segment's virtual end — the
        # consistent cut.  Until then it is provisional: a fleet fault
        # can cancel the handle and discard it (rigid abort).
        handle = self.sim.schedule(
            end_ms,
            lambda: self._on_segment_done(state.spec.name),
            label=f"segment {spec.name}@{end_cursor}",
        )
        state.pending = _PendingSegment(
            result=result,
            lease=lease,
            end_cursor=end_cursor,
            start_ms=start_ms,
            end_ms=end_ms,
            granted=granted,
            delay=delay,
            handle=handle,
        )

    def _on_segment_done(self, name: str) -> None:
        state = self._jobs[name]
        pending = state.pending
        assert pending is not None
        state.pending = None
        pending.lease.release()  # idempotent if the lease was revoked
        result = pending.result
        state.losses.update(result.losses)
        state.segments.append(
            _Segment(
                start_ms=pending.start_ms,
                end_ms=pending.end_ms,
                gpus=pending.granted,
                slots=pending.lease.slots,
                cursor_from=state.cursor,
                cursor_to=pending.end_cursor,
                makespan_ms=result.makespan_ms,
                resize_overhead_ms=pending.delay,
            )
        )
        state.gpu_ms += pending.granted * result.makespan_ms
        state.overhead_ms += pending.delay
        state.cursor = pending.end_cursor
        now = self.sim.now
        if state.remaining == 0:
            state.status = "done"
            state.finished_ms = now
            state.digest = state.plane.digest()
            spec = state.spec
            self.trace.record_event(
                "job_done",
                now,
                job=spec.name,
                subnets=spec.subnets,
                wait_ms=(state.started_ms or now) - spec.submit_ms,
                span_ms=now - spec.submit_ms,
                segments=len(state.segments),
            )
        else:
            state.status = "boundary"
        self._request_plan()

    # ------------------------------------------------------------------
    # fleet faults (revocation path)
    # ------------------------------------------------------------------
    def inject_fleet_faults(
        self,
        schedule: FaultSchedule,
        slots: Optional[Sequence[int]] = None,
    ) -> None:
        """Arm a fleet-scoped fault schedule against this service run.

        Every event must be a fleet kind (``slot_preempt`` /
        ``node_down``); engine-scoped kinds belong in
        :class:`~repro.ft.injector.FaultInjector`.  ``slots`` optionally
        restricts which physical slots this scheduler reacts to — the
        fleet-chaos harness uses it to route one storm across co-located
        planes (training vs serving) sharing a manager.
        """
        if self._ran:
            raise ServiceError("scheduler already ran; build a fresh one")
        if slots is not None:
            self._fleet_mask = frozenset(slots)
        for event in schedule:
            if event.kind not in FLEET_KINDS:
                raise ServiceError(
                    f"inject_fleet_faults needs fleet kinds "
                    f"{sorted(FLEET_KINDS)}, got {event.kind!r}"
                )
            self.sim.schedule(
                event.time_ms,
                lambda event=event: self._on_fleet_fault(event),
                label=f"fleet {event.kind}@{event.target}",
            )

    def _fleet_slot_group(self, event: FaultEvent) -> List[int]:
        """Physical slots an event strikes: one for ``slot_preempt``, a
        contiguous ``slots_per_node`` group for ``node_down``."""
        total = self.manager.total_gpus
        if event.kind == NODE_DOWN:
            base = event.target * self.slots_per_node
            return [
                s for s in range(base, base + self.slots_per_node) if s < total
            ]
        return [event.target] if event.target < total else []

    def _on_fleet_fault(self, event: FaultEvent) -> None:
        now = self.sim.now
        self.fleet_faults += 1
        label = f"{event.kind}@{event.target} t={event.time_ms:g}ms"
        for slot in self._fleet_slot_group(event):
            if self._fleet_mask is not None and slot not in self._fleet_mask:
                continue
            if self.manager.is_down(slot):
                continue
            lease = self.manager.revoke(slot, fault=label)
            self.sim.schedule(
                now + event.duration_ms,
                lambda slot=slot: self._on_slot_up(slot),
                label=f"slot-up {slot}",
            )
            if lease is None:
                continue
            self.trace.record_event(
                "lease_revoke",
                now,
                job=lease.job,
                lease=lease.lease_id,
                slot=slot,
                fault=event.kind,
            )
            state = self._jobs.get(lease.job)
            if state is None or state.preemptible:
                # elastic: the in-flight segment drains to its cut, the
                # deferred release is idempotent, and the next plan pass
                # reshapes the job onto the shrunken fleet
                continue
            self._abort_rigid(state, lease, event.kind, now)
        self._request_plan()

    def _on_slot_up(self, slot: int) -> None:
        self.manager.mark_up(slot)
        self._request_plan()

    def _abort_rigid(
        self, state: _JobState, lease, kind: str, now: float
    ) -> None:
        """A rigid job has no mid-stream cut: discard the in-flight
        segment, restart from subnet 0 after backoff — or fail the job
        once its restart budget is spent."""
        spec = state.spec
        pending = state.pending
        if pending is not None:
            pending.handle.cancel()
            state.lost_virtual_ms += max(0.0, now - pending.start_ms)
            state.pending = None
        lease.release()  # idempotent: frees the revoked lease's residual
        state.losses.clear()
        state.cursor = 0
        state.restarts += 1
        # restart-from-scratch: fresh weights and plane (a rigid job
        # checkpoints nothing mid-stream)
        state.supernet = Supernet(state.space)
        state.plane = FunctionalPlane(
            state.supernet,
            _seed_tree(spec.seed),
            functional_batch=spec.functional_batch,
            optimizer=default_optimizer(),
        )
        if state.restarts > self.max_restarts:
            state.status = "failed"
            state.finished_ms = now
            state.failure = failure_summary(
                spec.name,
                attempts=state.restarts,
                max_restarts=self.max_restarts,
                lost_virtual_ms=state.lost_virtual_ms,
                fault=kind,
            )
            self.trace.record_event(
                "job_failed",
                now,
                job=spec.name,
                restarts=state.restarts,
                lost_ms=state.lost_virtual_ms,
                fault=kind,
            )
            return
        backoff = self.requeue_backoff_ms * (2 ** (state.restarts - 1))
        state.status = "queued"
        state.not_before = now + backoff
        self.trace.record_event(
            "job_requeue",
            now,
            job=spec.name,
            cut=0,
            restarts=state.restarts,
            backoff_ms=backoff,
            fault=kind,
        )
        self.sim.schedule(
            state.not_before,
            self._request_plan,
            label=f"requeue {spec.name}",
        )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self) -> Dict:
        """Run every submitted job to completion; returns the report."""
        if not self._jobs:
            raise ServiceError("no jobs submitted")
        self._ran = True
        # co-tenant deployments share the manager across planes that run
        # sequentially; each plane's run (re-)installs its own clock so
        # the usage ledger meters holdings on the clock they live on
        self.manager.clock = lambda: self.sim.now
        self.sim.run()
        if self.telemetry is not None:
            self.telemetry.finalize(self.sim.now)
        unfinished = sorted(
            name
            for name, s in self._jobs.items()
            if s.status not in ("done", "failed")
        )
        if unfinished:
            raise ServiceError(
                f"service quiesced with unfinished jobs: {unfinished}"
            )
        return self.report()

    def report(self) -> Dict:
        """Deterministic machine-readable outcome of the whole service
        run (canonical content; serialise with
        :func:`service_report_json`)."""
        makespan = max(
            (
                s.finished_ms
                for s in self._jobs.values()
                if s.finished_ms is not None
            ),
            default=0.0,
        )
        jobs = []
        for state in sorted(self._jobs.values(), key=lambda s: s.index):
            spec = state.spec
            jobs.append(
                {
                    "name": spec.name,
                    "space": state.space.name,
                    "system": spec.system,
                    "sync": state.config.sync,
                    "priority": spec.priority,
                    "subnets": spec.subnets,
                    "elastic": state.preemptible,
                    "status": state.status,
                    "submitted_ms": spec.submit_ms,
                    "started_ms": state.started_ms,
                    "finished_ms": state.finished_ms,
                    "wait_ms": (
                        state.started_ms - spec.submit_ms
                        if state.started_ms is not None
                        else None
                    ),
                    "span_ms": (
                        state.finished_ms - spec.submit_ms
                        if state.finished_ms is not None
                        else None
                    ),
                    "gpu_ms": state.gpu_ms,
                    "overhead_ms": state.overhead_ms,
                    "segments": [
                        {
                            "start_ms": seg.start_ms,
                            "end_ms": seg.end_ms,
                            "gpus": seg.gpus,
                            "slots": list(seg.slots),
                            "from": seg.cursor_from,
                            "to": seg.cursor_to,
                            "makespan_ms": seg.makespan_ms,
                        }
                        for seg in state.segments
                    ],
                    "resizes": state.resizes,
                    "preemptions": state.preemptions,
                    "restarts": state.restarts,
                    "lost_virtual_ms": state.lost_virtual_ms,
                    "failure": state.failure,
                    "digest": state.digest,
                    "losses": {
                        str(sid): state.losses[sid]
                        for sid in sorted(state.losses)
                    },
                }
            )
        busy = sum(s.gpu_ms for s in self._jobs.values())
        return {
            "schema": 1,
            "total_gpus": self.manager.total_gpus,
            "quantum": self.quantum,
            "resize_cost_ms": self.resize_cost_ms,
            "makespan_ms": makespan,
            "gpu_utilization": (
                busy / (self.manager.total_gpus * makespan) if makespan else 0.0
            ),
            "leases_granted": self.manager.total_leases_granted,
            "revocations": self.manager.total_revocations,
            "fleet_faults": self.fleet_faults,
            "failed_jobs": sum(
                1 for s in self._jobs.values() if s.status == "failed"
            ),
            "events": len(self.trace.events),
            "jobs": jobs,
        }


def _seed_tree(seed: int):
    from repro.seeding import SeedSequenceTree

    return SeedSequenceTree(seed)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
_SERVICE_KEYS = frozenset(
    {
        "total_gpus",
        "gpu_speed_factors",
        "quantum",
        "resize_cost_ms",
        "verify_solo",
        "jobs",
        "max_restarts",
        "requeue_backoff_ms",
        "slots_per_node",
        "faults",
    }
)


def run_service(
    payload: Mapping,
    verify_solo: Optional[bool] = None,
    telemetry=None,
) -> Dict:
    """Run one ``serve`` config (see ``examples/serve_demo.json``).

    ``verify_solo`` (or ``"verify_solo": true`` in the payload) re-runs
    every job *alone* — elastic (CSP) jobs at their capped maximum GPU
    count, rigid jobs at the exact allocation the service gave them —
    and records whether digest and per-subnet losses match bitwise.  The
    report's ``"ok"`` is False on any mismatch, which is the acceptance
    criterion the ``service-smoke`` CI job gates on.
    """
    unknown = sorted(set(payload) - _SERVICE_KEYS)
    if unknown:
        raise ServiceError(f"unknown service config keys: {unknown}")
    if not payload.get("jobs"):
        raise ServiceError('service config needs a non-empty "jobs" list')
    speeds = payload.get("gpu_speed_factors")
    manager = ClusterManager(
        ClusterSpec(
            num_gpus=int(payload.get("total_gpus", 8)),
            gpu_speed_factors=tuple(speeds) if speeds else None,
        )
    )
    scheduler = JobScheduler(
        manager,
        quantum=int(payload.get("quantum", 8)),
        resize_cost_ms=float(payload.get("resize_cost_ms", 50.0)),
        max_restarts=int(payload.get("max_restarts", 3)),
        requeue_backoff_ms=float(payload.get("requeue_backoff_ms", 25.0)),
        slots_per_node=int(payload.get("slots_per_node", 4)),
        telemetry=telemetry,
    )
    for entry in payload["jobs"]:
        scheduler.submit(JobSpec.from_payload(entry))
    if payload.get("faults"):
        scheduler.inject_fleet_faults(
            FaultSchedule.from_payload(payload["faults"])
        )
    report = scheduler.run()
    if verify_solo is None:
        verify_solo = bool(payload.get("verify_solo", False))
    report["verified"] = bool(verify_solo)
    if verify_solo:
        ok = True
        for entry, job in zip(payload["jobs"], report["jobs"]):
            if job["status"] == "failed":
                # a job that exhausted its restart budget produced no
                # final weights; there is nothing to compare to solo
                job["solo_gpus"] = None
                job["solo_digest"] = None
                job["digest_matches_solo"] = None
                job["losses_match_solo"] = None
                continue
            spec = JobSpec.from_payload(entry)
            space = get_search_space(spec.space)
            if spec.space_overrides:
                space = space.scaled(**dict(spec.space_overrides))
            solo_gpus = (
                job["segments"][0]["gpus"]
                if not job["elastic"]
                else min(spec.max_gpus, manager.total_gpus, space.num_blocks)
            )
            solo = run_uninterrupted(
                space,
                system_by_name(spec.system, **dict(spec.overrides or {})),
                num_gpus=solo_gpus,
                steps=spec.subnets,
                seed=spec.seed,
                batch=spec.batch,
                functional_batch=spec.functional_batch,
                stream_kind=spec.stream_kind,
            )
            job["solo_gpus"] = solo_gpus
            job["solo_digest"] = solo.digest
            job["digest_matches_solo"] = solo.digest == job["digest"]
            job["losses_match_solo"] = {
                str(sid): loss for sid, loss in sorted(solo.losses.items())
            } == job["losses"]
            ok = ok and job["digest_matches_solo"] and job["losses_match_solo"]
        report["ok"] = ok
    else:
        report["ok"] = True
    return report


def service_report_json(report: Mapping) -> str:
    """Canonical byte-deterministic serialisation of a service report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def format_service_report(report: Mapping) -> str:
    """Human-readable service summary: per-job table plus timeline."""
    lines = [
        f"service: {report['total_gpus']} GPUs, quantum "
        f"{report['quantum']} subnets, {len(report['jobs'])} job(s), "
        f"makespan {report['makespan_ms']:.1f} ms, "
        f"fleet utilization {report['gpu_utilization']:.1%}",
        "",
        f"{'job':<12s} {'prio':>4s} {'subnets':>7s} {'segs':>4s} "
        f"{'resizes':>7s} {'preempt':>7s} {'wait ms':>9s} {'span ms':>10s} "
        f"{'digest':<18s} {'solo':<5s}",
    ]
    for job in report["jobs"]:
        digest = (job["digest"] or "")[:16] + "…" if job["digest"] else "N/A"
        solo = "-"
        if report.get("verified") and job.get("status") != "failed":
            solo = (
                "OK"
                if job["digest_matches_solo"] and job["losses_match_solo"]
                else "FAIL"
            )
        wait = f"{job['wait_ms']:>9.1f}" if job["wait_ms"] is not None else f"{'-':>9s}"
        span = f"{job['span_ms']:>10.1f}" if job["span_ms"] is not None else f"{'-':>10s}"
        lines.append(
            f"{job['name']:<12s} {job['priority']:>4d} {job['subnets']:>7d} "
            f"{len(job['segments']):>4d} {job['resizes']:>7d} "
            f"{job['preemptions']:>7d} {wait} "
            f"{span} {digest:<18s} {solo:<5s}"
        )
    lines.append("")
    lines.append("timeline (segments as [from,to) subnet ranges):")
    segments = []
    for job in report["jobs"]:
        for seg in job["segments"]:
            segments.append((seg["start_ms"], job["name"], seg))
    for start, name, seg in sorted(segments, key=lambda s: (s[0], s[1])):
        slots = ",".join(str(s) for s in seg["slots"])
        lines.append(
            f"  t={start:9.1f}ms  {name:<12s} [{seg['from']:>3d},{seg['to']:>3d}) "
            f"on {seg['gpus']} GPU(s) {{{slots}}}  ({seg['makespan_ms']:.1f} ms)"
        )
    if report.get("revocations"):
        lines.append("")
        lines.append(
            f"fleet faults: {report['fleet_faults']} event(s), "
            f"{report['revocations']} lease revocation(s), "
            f"{report['failed_jobs']} job(s) failed"
        )
    failed = [job for job in report["jobs"] if job.get("status") == "failed"]
    if failed:
        lines.append("")
        lines.append("failed jobs (restart budget exhausted):")
        for job in failed:
            failure = job["failure"] or {}
            lines.append(
                f"  {job['name']:<12s} {failure.get('attempts', '?')} attempts "
                f"(budget {failure.get('max_restarts', '?')}), "
                f"{failure.get('lost_virtual_ms', 0.0):.1f} ms virtual work "
                f"lost, last fault {failure.get('fault', '?')}"
            )
    if report.get("verified"):
        lines.append("")
        lines.append(
            "tenant isolation: every job's digest "
            + (
                "matches its solo run bitwise"
                if report["ok"]
                else "DIVERGED from its solo run"
            )
        )
    return "\n".join(lines)
