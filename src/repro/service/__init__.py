"""Multi-tenant job service above the engine (``repro.service``).

The engine layer answers "how does *one* job run on *one* cluster";
this package answers "how do *many* jobs share *one* fleet" — the
operating layer NASPipe's reproducibility guarantee makes cheap, because
a CSP job's bits do not depend on when, where, or on how many GPUs it
ran:

* :mod:`repro.service.manager` — :class:`ClusterManager`, the
  fleet-slot owner: grants disjoint, deterministic GPU leases;
* :mod:`repro.service.lease` — :class:`DeviceLease`, the handle an
  engine materializes its device plane from;
* :mod:`repro.service.scheduler` — :class:`JobScheduler`:
  admission queue, priority-weighted fair-share allocation, elastic
  grow/shrink/preemption at consistent segment cuts, and bitwise
  per-tenant determinism (verified against solo baselines).

Entry points: ``naspipe serve jobs.json`` on the command line,
:func:`run_service` programmatically.
"""

from repro.service.lease import DeviceLease
from repro.service.manager import ClusterManager
from repro.service.scheduler import (
    JobScheduler,
    JobSpec,
    fair_share,
    format_service_report,
    run_service,
    service_report_json,
)

__all__ = [
    "ClusterManager",
    "DeviceLease",
    "JobScheduler",
    "JobSpec",
    "fair_share",
    "run_service",
    "format_service_report",
    "service_report_json",
]
