"""Subnet/stage partitioning strategies.

NASPipe gives *every* subnet its own balanced D-partition (equal profiled
time per stage), made possible by layer mirroring; baseline systems pin a
static block-range partition of the supernet.  The difference is one of
the paper's three performance levers (§5.3's "w/o mirroring" ablation).
"""

from repro.partition.balanced import (
    Partition,
    balanced_partition,
    partition_cost,
    partition_imbalance,
)
from repro.partition.static import static_partition_for_space
from repro.partition.mirror import MirrorRegistry

__all__ = [
    "Partition",
    "balanced_partition",
    "partition_cost",
    "partition_imbalance",
    "static_partition_for_space",
    "MirrorRegistry",
]
