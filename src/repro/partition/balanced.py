"""Balanced contiguous D-partitioning of per-block costs.

The classic *linear partition* problem: split a sequence of ``m``
non-negative block costs into ``D`` contiguous segments minimising the
maximum segment sum (the pipeline's step time is set by its slowest
stage).  We solve it exactly with binary search over the answer plus a
greedy feasibility check — O(m log Σcost) — which is optimal for the
min-max objective and fast enough to run per subnet (the paper partitions
every subnet individually, at second-level subnet frequency).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import PartitionError

__all__ = [
    "Partition",
    "balanced_partition",
    "weighted_balanced_partition",
    "partition_cost",
    "partition_imbalance",
]

#: A partition is a list of ``(start, stop)`` block ranges, one per stage,
#: contiguous and covering ``[0, m)``.
Partition = List[Tuple[int, int]]


def _greedy_segments_needed(costs: Sequence[float], limit: float) -> int:
    """Minimum number of segments so that no segment sum exceeds ``limit``.

    Returns a number > len(costs) when a single block already exceeds the
    limit (infeasible).
    """
    segments = 1
    running = 0.0
    for cost in costs:
        if cost > limit:
            return len(costs) + 1
        if running + cost > limit:
            segments += 1
            running = cost
        else:
            running += cost
    return segments


def _cut_at_limit(costs: Sequence[float], limit: float, stages: int) -> Partition:
    """Produce exactly ``stages`` segments with max sum ≤ ``limit``.

    Greedy fill from the left, but never leave fewer remaining blocks than
    remaining stages (each stage must own at least one block).
    """
    partition: Partition = []
    start = 0
    m = len(costs)
    for stage in range(stages):
        stages_left_after = stages - stage - 1
        stop = start
        running = 0.0
        # Extend while within limit and enough blocks remain for the rest.
        while stop < m - stages_left_after:
            if stop > start and running + costs[stop] > limit:
                break
            running += costs[stop]
            stop += 1
        partition.append((start, stop))
        start = stop
    if start != m:
        raise PartitionError(
            f"internal: cut covered {start} of {m} blocks at limit {limit}"
        )
    return partition


def balanced_partition(costs: Sequence[float], stages: int) -> Partition:
    """Optimal min-max contiguous partition of ``costs`` into ``stages``.

    >>> balanced_partition([1, 1, 1, 1], 2)
    [(0, 2), (2, 4)]
    """
    m = len(costs)
    if stages <= 0:
        raise PartitionError(f"stages must be positive, got {stages}")
    if m < stages:
        raise PartitionError(
            f"cannot split {m} blocks into {stages} stages (need >= 1 each)"
        )
    if any(cost < 0 for cost in costs):
        raise PartitionError("block costs must be non-negative")
    low = max(costs) if costs else 0.0
    high = float(sum(costs))
    # Binary search the smallest feasible max-segment sum.  48 iterations
    # of float bisection reaches machine precision for any realistic sum.
    for _ in range(48):
        mid = (low + high) / 2.0
        if _greedy_segments_needed(costs, mid) <= stages:
            high = mid
        else:
            low = mid
    return _cut_at_limit(costs, high, stages)


def _weighted_cut(
    costs: Sequence[float],
    weights: Sequence[float],
    limit: float,
    stages: int,
) -> Tuple[Partition, bool]:
    """Greedy max-prefix cut under per-stage caps ``limit / weight_s``.

    Returns ``(partition, feasible)``: the cut always covers all blocks
    (a stage's mandatory first block is taken even over its cap, and no
    stage may strand later stages below one block each), ``feasible`` is
    False when any cap was exceeded.
    """
    partition: Partition = []
    start = 0
    m = len(costs)
    feasible = True
    for stage in range(stages):
        cap = limit / weights[stage]
        stages_left_after = stages - stage - 1
        stop = start
        running = 0.0
        while stop < m - stages_left_after:
            if stop > start and running + costs[stop] > cap:
                break
            running += costs[stop]
            stop += 1
        if stages_left_after == 0:
            # the final stage owns every remaining block regardless of
            # its cap — the cut must always cover [0, m)
            while stop < m:
                running += costs[stop]
                stop += 1
        if running > cap:
            feasible = False
        partition.append((start, stop))
        start = stop
    if start != m:
        raise PartitionError(
            f"internal: weighted cut covered {start} of {m} blocks"
        )
    return partition, feasible


def weighted_balanced_partition(
    costs: Sequence[float],
    stages: int,
    stage_weights: Sequence[float],
) -> Partition:
    """Min-max contiguous partition of *weighted* stage loads.

    Minimises ``max_s(weight_s × segment_sum_s)`` — a stage with weight
    ``w`` runs its blocks ``w×`` slower (a straggler), so the optimum
    shifts boundaries away from it.  Uniform weights reduce to
    :func:`balanced_partition` exactly (same code path, so identical
    cuts).  Bisection over the answer with a greedy max-prefix
    feasibility check; with the one-block-per-stage floor the greedy
    check is conservative in degenerate corners, yielding a valid,
    near-optimal cut.

    >>> weighted_balanced_partition([1, 1, 1, 1], 2, [3.0, 1.0])
    [(0, 1), (1, 4)]
    """
    if len(stage_weights) != stages:
        raise PartitionError(
            f"need {stages} stage weights, got {len(stage_weights)}"
        )
    if any(weight <= 0 for weight in stage_weights):
        raise PartitionError("stage weights must be positive")
    if all(weight == stage_weights[0] for weight in stage_weights):
        return balanced_partition(costs, stages)
    m = len(costs)
    if m < stages:
        raise PartitionError(
            f"cannot split {m} blocks into {stages} stages (need >= 1 each)"
        )
    if any(cost < 0 for cost in costs):
        raise PartitionError("block costs must be non-negative")
    low = 0.0
    high = max(stage_weights) * float(sum(costs))
    for _ in range(60):
        mid = (low + high) / 2.0
        _, feasible = _weighted_cut(costs, stage_weights, mid, stages)
        if feasible:
            high = mid
        else:
            low = mid
    partition, _ = _weighted_cut(costs, stage_weights, high, stages)
    return partition


def partition_cost(costs: Sequence[float], partition: Partition) -> float:
    """The max stage sum — the pipeline step time this partition yields."""
    return max(sum(costs[start:stop]) for start, stop in partition)


def partition_imbalance(costs: Sequence[float], partition: Partition) -> float:
    """Max stage sum over mean stage sum (1.0 = perfectly balanced)."""
    sums = [sum(costs[start:stop]) for start, stop in partition]
    mean = sum(sums) / len(sums)
    if mean == 0:
        return 1.0
    return max(sums) / mean
