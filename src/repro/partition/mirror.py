"""Layer mirroring between pipeline stages (paper §4.2).

NASPipe initialises each layer's pinned-CPU home according to the static
(expected-cost) partition.  When a subnet's *balanced* partition assigns a
layer to a different stage than its home, the layer is **mirrored** there:
a replica is registered on the visiting stage (PyTorch ``add_module`` in
the original), and every subsequent parameter update to the layer is
actively pushed to all replicas over the interconnect.

The registry tracks replica sets and accounts the push-synchronisation
traffic, so the "w/o mirroring" ablation (Figure 6) can price what
mirroring buys: without it, a layer can only execute on its home stage and
each subnet is stuck with the static partition's imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.nn.parameter_store import LayerId
from repro.partition.balanced import Partition
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = ["MirrorEvent", "MirrorRegistry"]


@dataclass(frozen=True)
class MirrorEvent:
    """One replica creation: ``layer`` mirrored onto ``stage``."""

    layer: LayerId
    home_stage: int
    stage: int
    time: float


@dataclass
class MirrorRegistry:
    """Tracks layer homes, replicas, and push-sync traffic."""

    home_partition: Partition
    events: List[MirrorEvent] = field(default_factory=list)
    _replicas: Dict[LayerId, Set[int]] = field(default_factory=dict)
    push_bytes_total: int = 0
    push_count: int = 0

    def home_stage(self, layer: LayerId) -> int:
        """The stage whose pinned CPU storage owns ``layer``."""
        block = layer[0]
        for stage, (start, stop) in enumerate(self.home_partition):
            if start <= block < stop:
                return stage
        raise KeyError(f"block {block} not covered by home partition")

    def replicas(self, layer: LayerId) -> Set[int]:
        """All stages currently holding ``layer`` (home included)."""
        stages = self._replicas.get(layer)
        if stages is None:
            stages = {self.home_stage(layer)}
            self._replicas[layer] = stages
        return stages

    def ensure_resident_stage(
        self, layer: LayerId, stage: int, time: float = 0.0
    ) -> bool:
        """Mirror ``layer`` onto ``stage`` if it is not already there.

        Returns True when a new replica was created.
        """
        stages = self.replicas(layer)
        if stage in stages:
            return False
        stages.add(stage)
        self.events.append(MirrorEvent(layer, self.home_stage(layer), stage, time))
        return True

    def register_subnet(
        self, subnet: Subnet, partition: Partition, time: float = 0.0
    ) -> List[MirrorEvent]:
        """Mirror every layer the subnet runs off its home stage.

        Returns the events created by this registration (empty when the
        balanced partition happens to match all homes).
        """
        created: List[MirrorEvent] = []
        before = len(self.events)
        for stage, (start, stop) in enumerate(partition):
            for layer in subnet.layers_in_range(start, stop):
                self.ensure_resident_stage(layer, stage, time)
        return self.events[before:]

    def record_update_push(self, layer: LayerId, param_bytes: int) -> int:
        """Account the traffic of pushing an update to all replicas.

        Returns the bytes sent (0 when the layer has a single residence).
        """
        fan_out = len(self.replicas(layer)) - 1
        sent = fan_out * param_bytes
        if sent:
            self.push_bytes_total += sent
            self.push_count += 1
        return sent

    def mirrored_layer_count(self) -> int:
        """How many distinct layers have at least one off-home replica."""
        return sum(1 for stages in self._replicas.values() if len(stages) > 1)

    def stage_replica_counts(self) -> Dict[int, int]:
        """Off-home replicas resident per stage, sorted by stage.

        Shows where mirroring has shifted supernet mass relative to the
        static homes — the degradation rebalancer's report of which
        stages absorbed a straggler's blocks.
        """
        counts: Dict[int, int] = {}
        for layer, stages in self._replicas.items():
            home = self.home_stage(layer)
            for stage in stages:
                if stage != home:
                    counts[stage] = counts.get(stage, 0) + 1
        return {stage: counts[stage] for stage in sorted(counts)}


def mirror_traffic_for_stream(
    supernet: Supernet,
    subnets: List[Subnet],
    partitions: List[Partition],
    home_partition: Partition,
) -> Tuple[MirrorRegistry, int]:
    """Replay a stream through a fresh registry; return it and total bytes.

    Convenience for ablation benches that want mirroring cost without a
    full pipeline simulation.
    """
    registry = MirrorRegistry(home_partition)
    for subnet, partition in zip(subnets, partitions):
        registry.register_subnet(subnet, partition)
        for layer in subnet.layer_ids():
            registry.record_update_push(layer, supernet.profile(layer).param_bytes)
    return registry, registry.push_bytes_total
