"""Static (per-space) block-range partitioning for baseline systems.

GPipe, PipeDream and VPipe fix each choice block to one GPU for the whole
run.  The best a static scheme can do is balance the *expected* per-block
cost (mean over candidates); any particular subnet's chosen layers then
deviate from expectation, leaving its stages unbalanced — the effect
behind NASPipe's 9.6% lower per-subnet execution time (paper §5.1).
"""

from __future__ import annotations

from typing import List

from repro.partition.balanced import Partition, balanced_partition
from repro.supernet.supernet import Supernet

__all__ = ["expected_block_costs", "static_partition_for_space"]


def expected_block_costs(supernet: Supernet) -> List[float]:
    """Mean fwd+bwd reference time of each choice block's candidates."""
    space = supernet.space
    costs: List[float] = []
    for block in range(space.num_blocks):
        total = 0.0
        for choice in range(space.choices_per_block):
            profile = supernet.profile((block, choice))
            total += profile.fwd_ms_ref + profile.bwd_ms_ref
        costs.append(total / space.choices_per_block)
    return costs


def static_partition_for_space(supernet: Supernet, stages: int) -> Partition:
    """The one-time partition a static system would deploy.

    Balances expected costs; optimal in expectation, unbalanced for any
    individual subnet.
    """
    return balanced_partition(expected_block_costs(supernet), stages)
