"""Exception hierarchy for the NASPipe reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Specific subclasses carry
the context a caller needs to recover (e.g. which GPU ran out of memory).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An experiment or system configuration is invalid."""


class SearchSpaceError(ReproError):
    """A search-space definition or subnet encoding is malformed."""


class PartitionError(ReproError):
    """A subnet could not be partitioned into the requested stages."""


class SchedulingError(ReproError):
    """The pipeline scheduler reached an inconsistent state."""


class DependencyViolationError(SchedulingError):
    """A task was executed in violation of a CSP causal dependency.

    Raised by the runtime's self-check; under correct operation it never
    fires.  Its presence in tests is what makes Definition 2 enforceable.
    """

    def __init__(self, task: object, blocking_subnet: int, layer: object) -> None:
        self.task = task
        self.blocking_subnet = blocking_subnet
        self.layer = layer
        super().__init__(
            f"task {task} ran before subnet {blocking_subnet} released "
            f"shared layer {layer}"
        )


class GpuOutOfMemoryError(ReproError):
    """A simulated GPU exceeded its memory capacity."""

    def __init__(self, gpu_id: int, requested: int, available: int) -> None:
        self.gpu_id = gpu_id
        self.requested = requested
        self.available = available
        super().__init__(
            f"GPU {gpu_id}: requested {requested} bytes, "
            f"only {available} available"
        )


class ContextNotResidentError(ReproError):
    """A task started executing while its parameters were not on the GPU.

    The context executor checks residency before running a task ("for
    safety", paper section 3.1); this error is that check firing.
    """


class SimulationError(ReproError):
    """The discrete-event engine reached an invalid state (e.g. deadlock)."""


class DeadlockError(SimulationError):
    """No runnable event remains but work is outstanding.

    ``blocked`` (when the engine can provide it) is a per-stage dump of
    the forward queues with each queued subnet's first unreleased
    ``(blocking subnet, layer)`` edge from the
    :class:`~repro.core.dependency.DependencyTracker`, plus the
    backward-ready lists — the evidence needed to see *which* causal
    edge wedged the pipeline instead of a silently-truncated result.
    """

    def __init__(self, pending: object, blocked: object = None) -> None:
        self.pending = pending
        self.blocked = blocked
        message = f"pipeline deadlocked with pending work: {pending}"
        if blocked:
            message += f"; blocked edges by stage: {blocked}"
        super().__init__(message)


class ReproducibilityError(ReproError):
    """Two runs that must match bitwise did not."""


class FaultToleranceError(ReproError):
    """Recovery could not make progress (restart budget exhausted, or a
    restart policy was asked to resume from state that does not exist)."""


class ServiceError(ReproError):
    """The multi-tenant service plane rejected a job or reached an
    inconsistent scheduling state (e.g. a job whose minimum GPU demand
    can never be satisfied by the fleet)."""


class LeaseError(ServiceError):
    """A device-lease operation violated exclusive ownership: acquiring
    more slots than are free, releasing a lease twice, or using a lease
    after release."""
