"""Layer profiling harness (paper §3.2: "pre-profiled statistics").

NASPipe's balanced partitioner and context predictor both rest on
pre-profiled per-layer statistics.  The paper profiles CUDA kernels; this
harness profiles the *functional plane's* layer implementations with real
wall-clock timing, then packages the measurements as
:class:`~repro.supernet.catalog.LayerTypeProfile` objects usable by a
custom search space (:mod:`repro.supernet.builder`).

Profiling real kernels would be non-deterministic; the default experiment
pipeline therefore uses the paper-anchored catalog, and this harness is
the extension point for users bringing their own layers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.nn.layers import LAYER_IMPLEMENTATIONS, build_parameters, layer_backward, layer_forward
from repro.supernet.catalog import LayerTypeProfile

__all__ = ["LayerMeasurement", "profile_layer", "profile_families", "measurements_to_profiles"]


@dataclass(frozen=True)
class LayerMeasurement:
    """Wall-clock cost of one layer family at one width/batch point."""

    family: str
    width: int
    batch: int
    fwd_ms: float
    bwd_ms: float
    param_count: int


def _time_ms(fn, repeats: int) -> float:
    fn()  # warm-up (allocations, cache)
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) * 1000.0 / repeats


def profile_layer(
    family: str,
    width: int = 64,
    batch: int = 32,
    repeats: int = 20,
    seed: int = 0,
) -> LayerMeasurement:
    """Measure one family's forward and backward wall-clock cost."""
    rng = np.random.Generator(np.random.PCG64(seed))
    params = build_parameters(family, width, rng)
    x = rng.standard_normal((batch, width)).astype(np.float32)
    y, cache = layer_forward(family, x, params)
    dy = rng.standard_normal(y.shape).astype(np.float32)

    fwd_ms = _time_ms(lambda: layer_forward(family, x, params), repeats)
    bwd_ms = _time_ms(lambda: layer_backward(family, dy, cache, params), repeats)
    param_count = sum(array.size for array in params.values())
    return LayerMeasurement(
        family=family,
        width=width,
        batch=batch,
        fwd_ms=fwd_ms,
        bwd_ms=bwd_ms,
        param_count=param_count,
    )


def profile_families(
    families: Optional[Sequence[str]] = None,
    width: int = 64,
    batch: int = 32,
    repeats: int = 20,
) -> Dict[str, LayerMeasurement]:
    """Profile several families under identical conditions."""
    selected = list(families) if families else sorted(LAYER_IMPLEMENTATIONS)
    return {
        family: profile_layer(family, width, batch, repeats)
        for family in selected
    }


def measurements_to_profiles(
    measurements: Dict[str, LayerMeasurement],
    activation_bytes_per_sample: int = 25_000,
) -> Dict[str, LayerTypeProfile]:
    """Convert measurements into catalog profiles for a custom space."""
    return {
        family: LayerTypeProfile(
            name=family,
            impl=family,
            fwd_ms=measurement.fwd_ms,
            bwd_ms=measurement.bwd_ms,
            param_count=measurement.param_count,
            activation_bytes_per_sample=activation_bytes_per_sample,
        )
        for family, measurement in measurements.items()
    }
