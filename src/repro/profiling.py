"""Layer + scheduler profiling harnesses (paper §3.2).

NASPipe's balanced partitioner and context predictor both rest on
pre-profiled per-layer statistics.  The paper profiles CUDA kernels; this
harness profiles the *functional plane's* layer implementations with real
wall-clock timing, then packages the measurements as
:class:`~repro.supernet.catalog.LayerTypeProfile` objects usable by a
custom search space (:mod:`repro.supernet.builder`).

Profiling real kernels would be non-deterministic; the default experiment
pipeline therefore uses the paper-anchored catalog, and this harness is
the extension point for users bringing their own layers.

The second harness, :func:`profile_scheduler_stream`, measures the
host-side scheduling hot path itself: it drives a
:class:`~repro.core.scheduler.CspScheduler` through a synthetic
admit/schedule/release stream and reports per-call wall time plus the
scan/readiness counters.  A *straggler* subnet pins the elimination
frontier at zero — the adversarial long-stream case where the per-layer
user lists grow with the stream and the scan path's per-call cost grows
with them, while the incremental readiness index stays flat.  The
recorded ``(qidx, qval)`` decision sequence doubles as the differential
fixture: any two modes run over the same seed must match it exactly.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler
from repro.nn.layers import LAYER_IMPLEMENTATIONS, build_parameters, layer_backward, layer_forward
from repro.supernet.catalog import LayerTypeProfile
from repro.supernet.subnet import Subnet

__all__ = [
    "LayerMeasurement",
    "profile_layer",
    "profile_families",
    "measurements_to_profiles",
    "SchedulerStreamProfile",
    "profile_scheduler_stream",
]


@dataclass(frozen=True)
class LayerMeasurement:
    """Wall-clock cost of one layer family at one width/batch point."""

    family: str
    width: int
    batch: int
    fwd_ms: float
    bwd_ms: float
    param_count: int


def _time_ms(fn, repeats: int) -> float:
    fn()  # warm-up (allocations, cache)
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) * 1000.0 / repeats


def profile_layer(
    family: str,
    width: int = 64,
    batch: int = 32,
    repeats: int = 20,
    seed: int = 0,
) -> LayerMeasurement:
    """Measure one family's forward and backward wall-clock cost."""
    rng = np.random.Generator(np.random.PCG64(seed))
    params = build_parameters(family, width, rng)
    x = rng.standard_normal((batch, width)).astype(np.float32)
    y, cache = layer_forward(family, x, params)
    dy = rng.standard_normal(y.shape).astype(np.float32)

    fwd_ms = _time_ms(lambda: layer_forward(family, x, params), repeats)
    bwd_ms = _time_ms(lambda: layer_backward(family, dy, cache, params), repeats)
    param_count = sum(array.size for array in params.values())
    return LayerMeasurement(
        family=family,
        width=width,
        batch=batch,
        fwd_ms=fwd_ms,
        bwd_ms=bwd_ms,
        param_count=param_count,
    )


def profile_families(
    families: Optional[Sequence[str]] = None,
    width: int = 64,
    batch: int = 32,
    repeats: int = 20,
) -> Dict[str, LayerMeasurement]:
    """Profile several families under identical conditions."""
    selected = list(families) if families else sorted(LAYER_IMPLEMENTATIONS)
    return {
        family: profile_layer(family, width, batch, repeats)
        for family in selected
    }


def measurements_to_profiles(
    measurements: Dict[str, LayerMeasurement],
    activation_bytes_per_sample: int = 25_000,
) -> Dict[str, LayerTypeProfile]:
    """Convert measurements into catalog profiles for a custom space."""
    return {
        family: LayerTypeProfile(
            name=family,
            impl=family,
            fwd_ms=measurement.fwd_ms,
            bwd_ms=measurement.bwd_ms,
            param_count=measurement.param_count,
            activation_bytes_per_sample=activation_bytes_per_sample,
        )
        for family, measurement in measurements.items()
    }


# ----------------------------------------------------------------------
# scheduler hot-path profiling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerStreamProfile:
    """Cost + decision fingerprint of one scheduler mode over one stream."""

    mode: str
    stream_len: int
    calls: int
    mean_call_us: float
    scans_per_call: float
    ready_pops: int
    index_edge_updates: int
    #: every (qidx, qval) the scheduler returned, in call order — the
    #: differential-testing fixture (NONE decisions included as (-1, -1))
    decisions: Tuple[Tuple[int, int], ...]


def profile_scheduler_stream(
    mode: str,
    num_subnets: int,
    queue_cap: int = 8,
    inflight_cap: int = 3,
    num_blocks: int = 8,
    num_choices: int = 8,
    stages: int = 8,
    seed: int = 2022,
    straggler: bool = True,
) -> SchedulerStreamProfile:
    """Drive one scheduler mode through a synthetic subnet stream.

    The loop mimics one stage's Algorithm 1 skeleton: admit subnets into
    a sorted queue up to ``queue_cap``, ask SCHEDULE() for the next
    forward, keep up to ``inflight_cap`` scheduled subnets unreleased
    (their WRITEs still pending), and retire the oldest when the queue is
    fully blocked.  With ``straggler`` enabled, subnet 0 releases its
    layers but never finishes, pinning the elimination frontier at zero —
    user lists then grow with the stream, which is exactly the regime
    where rescanning becomes superlinear and the readiness index does
    not.  Everything is derived from ``seed``; two modes run with equal
    parameters must produce identical ``decisions``.
    """
    rng = Random(seed)
    subnets = [
        Subnet(i, tuple(rng.randrange(num_choices) for _ in range(num_blocks)))
        for i in range(num_subnets)
    ]
    slice_stop = max(1, num_blocks // stages)

    def stage_layers(subnet_id: int) -> List:
        return subnets[subnet_id].layers_in_range(0, slice_stop)

    tracker = DependencyTracker()
    # Full wall-time accounting: this harness *is* the measurement, so
    # the sampled default would leave mean_call_us a 1-in-N estimate.
    scheduler = CspScheduler(mode=mode, timing="full")
    use_index = scheduler.uses_index
    scope = 0
    queue: List[int] = []
    inflight: List[int] = []
    decisions: List[Tuple[int, int]] = []
    next_id = 0
    held_straggler = False

    def admit() -> None:
        nonlocal next_id
        while next_id < num_subnets and len(queue) < queue_cap:
            tracker.register(subnets[next_id])
            insort(queue, next_id)
            if use_index:
                tracker.index_add(scope, next_id, stage_layers(next_id))
            next_id += 1

    admit()
    while queue:
        decision = scheduler.schedule(
            queue, stage_layers, tracker, scope=scope
        )
        decisions.append((decision.qidx, decision.qval))
        if decision.found:
            queue.remove(decision.qval)
            if use_index:
                tracker.index_discard(scope, decision.qval)
            if straggler and decision.qval == 0:
                # The straggler's WRITEs commit (so nothing deadlocks)
                # but it never reports finished: the frontier stays at 0
                # and nothing behind it is ever eliminated.
                tracker.release_layers(0, subnets[0].layer_ids())
                held_straggler = True
            else:
                inflight.append(decision.qval)
                if len(inflight) > inflight_cap:
                    tracker.mark_finished(inflight.pop(0))
            admit()
        else:
            if not inflight:
                break  # every queued subnet blocked only by the straggler
            tracker.mark_finished(inflight.pop(0))
    while inflight:
        tracker.mark_finished(inflight.pop(0))
    if held_straggler:
        tracker.mark_finished(0)

    return SchedulerStreamProfile(
        mode=scheduler.mode,
        stream_len=num_subnets,
        calls=scheduler.calls,
        mean_call_us=scheduler.mean_call_time_s * 1e6,
        scans_per_call=scheduler.scans / max(1, scheduler.calls),
        ready_pops=scheduler.ready_pops,
        index_edge_updates=tracker.index_edge_updates,
        decisions=tuple(decisions),
    )
