"""The CSP scheduler — the paper's Algorithm 2.

Given a stage's queue list of candidate forward tasks, return the first
(lowest position, which is lowest sequence ID — the queue is kept sorted)
task whose causal dependencies are clear.  Backward-first priority is
applied by the runtime before this scheduler is consulted (Algorithm 1
lines 4-11), so the scheduler only ever ranks forward tasks.

Three dependency checks are provided:

``index`` (default)
    Pops the lowest ready id from :class:`~repro.core.dependency.
    DependencyTracker`'s incremental readiness index — O(1) amortized
    per call, with all bookkeeping charged to the release path.  Falls
    back to the scan path when no index scope was supplied or built
    (standalone use), counted in ``fallback_scans``.

``scan``
    Per-layer release semantics from the tracker, evaluated by scanning
    the queue against the per-layer user lists on every call — precisely
    Definition 2, kept as the reference implementation the index must be
    decision-identical to (``exact`` is accepted as a legacy alias).

``conservative``
    Algorithm 2 verbatim: a queued subnet is blocked if any earlier,
    not-stage-finished subnet shares *any* layer with the candidate's
    stage-K slice.  Cheaper and what the paper's pseudocode states; it
    approximates WRITE completion by "backward ran at this stage".

All are deterministic; the runtime always validates the winner against
the exact tracker before execution, so every mode preserves CSP.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.dependency import DependencyTracker
from repro.errors import SchedulingError
from repro.nn.parameter_store import LayerId
from repro.supernet.subnet import Subnet

__all__ = ["ScheduleDecision", "CspScheduler"]


@dataclass(frozen=True)
class ScheduleDecision:
    """Result of one scheduler call: queue index and subnet ID.

    Mirrors Algorithm 2's ``(qidx, qval)`` output; ``NONE`` (qidx == -1)
    means no queued task is currently CSP-clear.
    """

    qidx: int
    qval: int

    @property
    def found(self) -> bool:
        return self.qidx >= 0


_NO_TASK = ScheduleDecision(-1, -1)

#: legacy spelling of the scan-based exact check
_MODE_ALIASES = {"exact": "scan"}
_MODES = ("index", "scan", "conservative")
_TIMING_MODES = ("sampled", "full", "off")


class CspScheduler:
    """Stage-local scheduling policy with dependency preservation."""

    def __init__(
        self,
        mode: str = "scan",
        timing: str = "sampled",
        timing_interval: int = 64,
    ) -> None:
        mode = _MODE_ALIASES.get(mode, mode)
        if mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES} (or 'exact', an alias of "
                f"'scan'), got {mode!r}"
            )
        if timing not in _TIMING_MODES:
            raise ValueError(
                f"timing must be one of {_TIMING_MODES}, got {timing!r}"
            )
        self.mode = mode
        #: wall-time accounting policy.  ``"sampled"`` (default) times one
        #: call in ``timing_interval`` — on the O(1) index fast path the
        #: two ``perf_counter`` syscalls otherwise dominate the decision
        #: they measure.  ``"full"`` times every call (benchmarks);
        #: ``"off"`` never reads the clock.
        self.timing = timing
        self.timing_interval = max(1, int(timing_interval))
        self._time_every = (
            0 if timing == "off" else 1 if timing == "full" else self.timing_interval
        )
        self.calls = 0
        #: schedule() calls actually wall-timed (== calls under "full")
        self.timed_calls = 0
        #: queue entries examined by the scan paths
        self.scans = 0
        #: decisions served straight from the readiness index
        self.ready_pops = 0
        #: index-mode calls that had no scope and fell back to scanning
        self.fallback_scans = 0
        #: cumulative host-side wall time spent inside *timed* schedule()
        #: calls — the paper's §3.2 claim is that the per-call mean stays
        #: "<0.01s", negligible against second-scale subnet executions.
        self.total_time_s = 0.0

    @property
    def uses_index(self) -> bool:
        return self.mode == "index"

    # ------------------------------------------------------------------
    def schedule(
        self,
        queue: Sequence[int],
        stage_layers_of: Callable[[int], Sequence[LayerId]],
        tracker: DependencyTracker,
        stage_finished: Optional[Set[int]] = None,
        subnet_of: Optional[Callable[[int], Subnet]] = None,
        skip: Optional[Set[int]] = None,
        scope: Optional[Hashable] = None,
    ) -> ScheduleDecision:
        """Pick the first CSP-clear forward task in ``queue``.

        ``queue`` is scanned in order (the runtime keeps it sorted by
        subnet ID, so "first clear" == "lowest clear ID" — the paper's
        priority rule).  ``skip`` excludes entries (used by the predictor
        to ask "and after this one, what next?").  ``scope`` names the
        tracker's readiness-index scope in ``index`` mode (the policy
        passes the stage id); the queue must mirror the indexed set.
        """
        self.calls += 1
        every = self._time_every
        if every and (every == 1 or self.calls % every == 1):
            started = time.perf_counter()
            try:
                return self._decide(
                    queue, stage_layers_of, tracker, stage_finished,
                    subnet_of, skip, scope,
                )
            finally:
                self.timed_calls += 1
                self.total_time_s += time.perf_counter() - started
        return self._decide(
            queue, stage_layers_of, tracker, stage_finished, subnet_of,
            skip, scope,
        )

    def _decide(
        self,
        queue: Sequence[int],
        stage_layers_of: Callable[[int], Sequence[LayerId]],
        tracker: DependencyTracker,
        stage_finished: Optional[Set[int]],
        subnet_of: Optional[Callable[[int], Subnet]],
        skip: Optional[Set[int]],
        scope: Optional[Hashable],
    ) -> ScheduleDecision:
        if self.mode == "index":
            if scope is not None and tracker.has_scope(scope):
                return self._pop_ready(queue, tracker, scope, skip)
            self.fallback_scans += 1
        for qidx, qval in enumerate(queue):
            if skip and qval in skip:
                continue
            self.scans += 1
            if self.mode == "conservative":
                clear = self._conservative_clear(
                    qval, stage_layers_of(qval), tracker,
                    stage_finished or set(), subnet_of,
                )
            else:
                clear = tracker.is_clear(qval, stage_layers_of(qval))
            if clear:
                return ScheduleDecision(qidx, qval)
        return _NO_TASK

    def _pop_ready(
        self,
        queue: Sequence[int],
        tracker: DependencyTracker,
        scope: Hashable,
        skip: Optional[Set[int]],
    ) -> ScheduleDecision:
        """O(1)-amortized decision off the incremental readiness index."""
        qval = tracker.first_ready(scope, skip=skip)
        if qval is None:
            return _NO_TASK
        self.ready_pops += 1
        qidx = bisect_left(queue, qval)
        if qidx >= len(queue) or queue[qidx] != qval:
            raise SchedulingError(
                f"readiness index desynchronised from queue: {qval} is "
                f"ready under scope {scope!r} but not queued"
            )
        return ScheduleDecision(qidx, qval)

    @property
    def mean_call_time_s(self) -> float:
        """Average wall time per *timed* schedule() call (0.0 before any
        call).  Under ``timing="sampled"`` this is an unbiased estimate
        over one call in ``timing_interval``; under ``"full"`` it is the
        exact mean the benchmarks report."""
        if self.timed_calls == 0:
            return 0.0
        return self.total_time_s / self.timed_calls

    def stats(self) -> dict:
        """Counters snapshot for profiling/benchmark reporting."""
        return {
            "mode": self.mode,
            "calls": self.calls,
            "scans": self.scans,
            "ready_pops": self.ready_pops,
            "fallback_scans": self.fallback_scans,
            "timing": self.timing,
            "timed_calls": self.timed_calls,
            "mean_call_us": self.mean_call_time_s * 1e6,
        }

    # ------------------------------------------------------------------
    def _conservative_clear(
        self,
        qval: int,
        stage_layers: Sequence[LayerId],
        tracker: DependencyTracker,
        stage_finished: Set[int],
        subnet_of: Optional[Callable[[int], Subnet]],
    ) -> bool:
        """Algorithm 2 lines 4-10: compare against whole earlier subnets."""
        if subnet_of is None:
            raise ValueError("conservative mode requires subnet_of")
        layer_set = set(stage_layers)
        for wval in range(tracker.frontier, qval):
            if wval in stage_finished or not tracker.is_registered(wval):
                continue
            if tracker.is_finished(wval):
                continue
            earlier = subnet_of(wval)
            if any(
                earlier.choices[block] == choice for block, choice in layer_set
            ):
                return False
        return True
