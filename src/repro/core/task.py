"""Tasks: the minimal unit of NASPipe scheduling and execution.

Paper §3.2: "The basic scheduling and execution unit in NASPipe's runtime
is a task, which is defined as either a subnet stage i's forward pass or
backward pass on processing one input batch.  Each task is identified by a
task property (forward or backward), subnet ID, and stage ID."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TaskKind", "Task"]


class TaskKind(enum.Enum):
    FORWARD = "fwd"
    BACKWARD = "bwd"


@dataclass(frozen=True)
class Task:
    """One schedulable unit."""

    subnet_id: int
    stage: int
    kind: TaskKind = TaskKind.FORWARD

    @property
    def sort_key(self):
        """Deterministic ordering key: (subnet, stage, kind name).

        Used only for stable container behaviour, not scheduling priority
        (the scheduler applies backward-first / lowest-ID-first itself).
        """
        return (self.subnet_id, self.stage, self.kind.value)

    @property
    def is_forward(self) -> bool:
        return self.kind is TaskKind.FORWARD

    @property
    def is_backward(self) -> bool:
        return self.kind is TaskKind.BACKWARD

    def __str__(self) -> str:
        return f"SN{self.subnet_id}.{self.kind.value}@P{self.stage}"
