"""Per-layer causal dependency tracking (Definition 2, exact form).

For every candidate layer the tracker knows which registered subnets use
it (in sequence order).  A subnet *releases* a layer when its WRITE — the
backward pass plus optimizer step of the stage owning that layer — has
committed.  Subnet ``y`` may access layer ``l`` once every earlier user of
``l`` has released it.

The tracker also implements the paper's *elimination scheme* (§3.2
complexity analysis): once all subnets below a sequence ID are fully
finished, they are dropped from the per-layer user lists, keeping the
scheduler's scan cost flat over arbitrarily long streams.

Why per-layer rather than the paper's per-subnet stage-local check?  The
stage-local check (Algorithm 2 verbatim — see
:class:`~repro.core.scheduler.CspScheduler`'s ``conservative`` mode)
compares a candidate's stage-K layers against *whole* earlier subnets and
considers an earlier subnet cleared once its backward ran at stage K.
When two subnets' balanced partitions place a shared layer in different
stages, that proxy can diverge from the true WRITE time in either
direction.  The tracker is therefore the runtime's ground truth: the
scheduler may use the cheap conservative filter, but a task only executes
once the tracker agrees — the "checks whether the subnet context to be
executed is ready ... for safety" step of paper §3.1.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SchedulingError
from repro.nn.parameter_store import LayerId
from repro.supernet.subnet import Subnet

__all__ = ["DependencyTracker"]


class DependencyTracker:
    """Tracks layer users, releases, completions, and the frontier."""

    def __init__(self) -> None:
        self._users: Dict[LayerId, List[int]] = {}
        self._subnets: Dict[int, Subnet] = {}
        self._released: Dict[int, Set[LayerId]] = {}
        self._finished: Set[int] = set()
        #: all subnet ids < frontier are finished and eliminated
        self.frontier: int = 0

    # ------------------------------------------------------------------
    # registration / lifecycle
    # ------------------------------------------------------------------
    def register(self, subnet: Subnet) -> None:
        """Admit a subnet into dependency bookkeeping."""
        if subnet.subnet_id in self._subnets:
            raise SchedulingError(f"subnet {subnet.subnet_id} registered twice")
        self._subnets[subnet.subnet_id] = subnet
        self._released[subnet.subnet_id] = set()
        for layer in subnet.layer_ids():
            insort(self._users.setdefault(layer, []), subnet.subnet_id)

    def is_registered(self, subnet_id: int) -> bool:
        return subnet_id in self._subnets or subnet_id < self.frontier

    def release_layers(self, subnet_id: int, layers: Iterable[LayerId]) -> None:
        """Record that ``subnet_id``'s WRITE on ``layers`` has committed."""
        released = self._released.get(subnet_id)
        if released is None:
            raise SchedulingError(f"release for unregistered subnet {subnet_id}")
        released.update(layers)

    def mark_finished(self, subnet_id: int) -> None:
        """Mark a subnet fully done (all writes committed) and advance
        the elimination frontier past any finished prefix."""
        if subnet_id not in self._subnets:
            raise SchedulingError(f"finish for unregistered subnet {subnet_id}")
        subnet = self._subnets[subnet_id]
        self._released[subnet_id].update(subnet.layer_ids())
        self._finished.add(subnet_id)
        self._advance_frontier()

    def _advance_frontier(self) -> None:
        while self.frontier in self._finished:
            self._eliminate(self.frontier)
            self.frontier += 1

    def _eliminate(self, subnet_id: int) -> None:
        subnet = self._subnets.pop(subnet_id)
        self._released.pop(subnet_id, None)
        self._finished.discard(subnet_id)
        for layer in subnet.layer_id_set():
            users = self._users.get(layer)
            if users and users[0] == subnet_id:
                users.pop(0)
                if not users:
                    del self._users[layer]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_finished(self, subnet_id: int) -> bool:
        return subnet_id < self.frontier or subnet_id in self._finished

    def has_released(self, subnet_id: int, layer: LayerId) -> bool:
        if subnet_id < self.frontier:
            return True
        return layer in self._released.get(subnet_id, ())

    def blocking_user(
        self, subnet_id: int, layers: Iterable[LayerId]
    ) -> Optional[Tuple[int, LayerId]]:
        """First (earlier subnet, layer) pair still blocking ``subnet_id``.

        Returns None when every earlier user of every given layer has
        released it — i.e. the access is CSP-clear.
        """
        for layer in layers:
            for user in self._users.get(layer, ()):
                if user >= subnet_id:
                    break  # user lists are sorted; no earlier users left
                if not self.has_released(user, layer):
                    return user, layer
        return None

    def is_clear(self, subnet_id: int, layers: Iterable[LayerId]) -> bool:
        return self.blocking_user(subnet_id, layers) is None

    def dependency_exists(self, earlier_id: int, later_id: int) -> bool:
        """Whether two registered subnets share at least one layer."""
        earlier = self._subnets.get(earlier_id)
        later = self._subnets.get(later_id)
        if earlier is None or later is None:
            return False
        return later.depends_on(earlier)

    def active_subnets(self) -> List[int]:
        return sorted(self._subnets)

    def layer_users(self, layer: LayerId) -> List[int]:
        return list(self._users.get(layer, ()))
