"""Per-layer causal dependency tracking (Definition 2, exact form).

For every candidate layer the tracker knows which registered subnets use
it (in sequence order).  A subnet *releases* a layer when its WRITE — the
backward pass plus optimizer step of the stage owning that layer — has
committed.  Subnet ``y`` may access layer ``l`` once every earlier user of
``l`` has released it.

The tracker also implements the paper's *elimination scheme* (§3.2
complexity analysis): once all subnets below a sequence ID are fully
finished, they are dropped from the per-layer user lists, keeping the
scheduler's scan cost flat over arbitrarily long streams.

Why per-layer rather than the paper's per-subnet stage-local check?  The
stage-local check (Algorithm 2 verbatim — see
:class:`~repro.core.scheduler.CspScheduler`'s ``conservative`` mode)
compares a candidate's stage-K layers against *whole* earlier subnets and
considers an earlier subnet cleared once its backward ran at stage K.
When two subnets' balanced partitions place a shared layer in different
stages, that proxy can diverge from the true WRITE time in either
direction.  The tracker is therefore the runtime's ground truth: the
scheduler may use the cheap conservative filter, but a task only executes
once the tracker agrees — the "checks whether the subnet context to be
executed is ready ... for safety" step of paper §3.1.

Readiness index
---------------

On top of the ground-truth user lists the tracker maintains an
*incremental readiness index*: per scope (one scope per pipeline stage,
keyed by anything hashable) it tracks, for every queued (subnet,
stage-slice) pair, the exact set of unreleased ``(earlier user, layer)``
edges still blocking it.  Releases update only the affected edges and a
subnet whose edge set drains is promoted into a sorted ready list, so
``first_ready`` is an O(1)-amortized pop rather than a queue rescan.  The
index is decision-identical to scanning — ready membership is by
construction ``is_clear(subnet, slice)`` — which the differential tests
in ``tests/test_scheduler_equivalence.py`` enforce.

:class:`ReadinessOverlay` gives the context predictor a copy-on-write
view of one scope: "pretend these subnets finished" is answered by
decrementing per-entry blocked counts lazily instead of re-scanning the
user lists ``depth`` times per prediction.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import SchedulingError
from repro.nn.parameter_store import LayerId
from repro.supernet.subnet import Subnet

__all__ = ["DependencyTracker", "ReadinessOverlay"]

#: one blocking edge: an earlier user that has not released a layer yet
_Edge = Tuple[int, LayerId]
#: one indexed entry: (scope key, waiting subnet id)
_Entry = Tuple[Hashable, int]


class _ScopeIndex:
    """Readiness bookkeeping for one scope (one stage's forward queue)."""

    __slots__ = ("layers", "blocked", "ready")

    def __init__(self) -> None:
        #: tracked stage-slice per indexed subnet
        self.layers: Dict[int, List[LayerId]] = {}
        #: unreleased blocking edges per indexed subnet
        self.blocked: Dict[int, Set[_Edge]] = {}
        #: sorted ids whose edge set is empty (CSP-clear right now)
        self.ready: List[int] = []


def _sorted_remove(values: List[int], value: int) -> bool:
    """Remove ``value`` from a sorted list; True when it was present."""
    pos = bisect_left(values, value)
    if pos < len(values) and values[pos] == value:
        values.pop(pos)
        return True
    return False


class DependencyTracker:
    """Tracks layer users, releases, completions, and the frontier."""

    def __init__(self) -> None:
        self._users: Dict[LayerId, List[int]] = {}
        self._subnets: Dict[int, Subnet] = {}
        self._released: Dict[int, Set[LayerId]] = {}
        self._finished: Set[int] = set()
        #: all subnet ids < frontier are finished and eliminated
        self.frontier: int = 0
        #: per-layer users that have *not* released it yet (sorted); unlike
        #: ``_users`` this shrinks at release time, not elimination time,
        #: so index maintenance never walks the finished-but-uneliminated
        #: tail a straggler pins in place.
        self._unreleased: Dict[LayerId, List[int]] = {}
        # --- readiness index state ------------------------------------
        self._scopes: Dict[Hashable, _ScopeIndex] = {}
        #: (user, layer) -> indexed entries blocked on that edge
        self._waiters: Dict[_Edge, Set[_Entry]] = {}
        #: layer -> indexed entries whose tracked slice contains it (used
        #: to add edges when an *earlier* subnet registers late)
        self._watchers: Dict[LayerId, Set[_Entry]] = {}
        #: cumulative incremental edge updates (profiling counter)
        self.index_edge_updates: int = 0

    # ------------------------------------------------------------------
    # registration / lifecycle
    # ------------------------------------------------------------------
    def register(self, subnet: Subnet) -> None:
        """Admit a subnet into dependency bookkeeping."""
        if subnet.subnet_id in self._subnets:
            raise SchedulingError(f"subnet {subnet.subnet_id} registered twice")
        self._subnets[subnet.subnet_id] = subnet
        self._released[subnet.subnet_id] = set()
        for layer in subnet.layer_ids():
            insort(self._users.setdefault(layer, []), subnet.subnet_id)
            insort(self._unreleased.setdefault(layer, []), subnet.subnet_id)
            watchers = self._watchers.get(layer)
            if watchers:
                # A subnet registering out of sequence order blocks any
                # already-indexed later entry sharing this layer.
                for scope_key, waiting in list(watchers):
                    if waiting > subnet.subnet_id:
                        self._add_edge(
                            scope_key, waiting, subnet.subnet_id, layer
                        )

    def is_registered(self, subnet_id: int) -> bool:
        return subnet_id in self._subnets or subnet_id < self.frontier

    def reset_frontier(self, base: int) -> None:
        """Start elimination at ``base`` (a recovered run's resume cut).

        A restarted stream carries its original sequence IDs from the
        checkpoint cut onward; without moving the frontier, the
        contiguity walk in :meth:`_advance_frontier` would wait forever
        for ids the previous incarnation already finished and the
        elimination scheme would never prune — correct but unboundedly
        growing state.  Only allowed before any subnet registers.
        """
        if self._subnets or self._finished:
            raise SchedulingError(
                "reset_frontier is only valid on an empty tracker"
            )
        self.frontier = base

    def release_layers(self, subnet_id: int, layers: Iterable[LayerId]) -> None:
        """Record that ``subnet_id``'s WRITE on ``layers`` has committed."""
        if subnet_id not in self._released:
            raise SchedulingError(f"release for unregistered subnet {subnet_id}")
        self._commit_release(subnet_id, layers)

    def mark_finished(self, subnet_id: int) -> None:
        """Mark a subnet fully done (all writes committed) and advance
        the elimination frontier past any finished prefix."""
        if subnet_id not in self._subnets:
            raise SchedulingError(f"finish for unregistered subnet {subnet_id}")
        subnet = self._subnets[subnet_id]
        self._commit_release(subnet_id, subnet.layer_ids())
        self._finished.add(subnet_id)
        self._advance_frontier()

    def _commit_release(
        self, subnet_id: int, layers: Iterable[LayerId]
    ) -> None:
        """Apply newly released layers and drain the affected edges."""
        released = self._released[subnet_id]
        for layer in layers:
            if layer in released:
                continue
            released.add(layer)
            unreleased = self._unreleased.get(layer)
            if unreleased is not None and _sorted_remove(unreleased, subnet_id):
                if not unreleased:
                    del self._unreleased[layer]
            for scope_key, waiting in self._waiters.pop((subnet_id, layer), ()):
                scope = self._scopes.get(scope_key)
                if scope is None:
                    continue
                edges = scope.blocked.get(waiting)
                if edges is None:
                    continue
                edges.discard((subnet_id, layer))
                self.index_edge_updates += 1
                if not edges:
                    insort(scope.ready, waiting)

    def _advance_frontier(self) -> None:
        while self.frontier in self._finished:
            self._eliminate(self.frontier)
            self.frontier += 1

    def _eliminate(self, subnet_id: int) -> None:
        subnet = self._subnets.pop(subnet_id)
        self._released.pop(subnet_id, None)
        self._finished.discard(subnet_id)
        for layer in subnet.layer_id_set():
            users = self._users.get(layer)
            if users and users[0] == subnet_id:
                users.pop(0)
                if not users:
                    del self._users[layer]

    # ------------------------------------------------------------------
    # readiness index
    # ------------------------------------------------------------------
    def _add_edge(
        self, scope_key: Hashable, waiting: int, user: int, layer: LayerId
    ) -> None:
        scope = self._scopes[scope_key]
        edges = scope.blocked[waiting]
        if (user, layer) in edges:
            return
        if not edges:
            _sorted_remove(scope.ready, waiting)
        edges.add((user, layer))
        self._waiters.setdefault((user, layer), set()).add((scope_key, waiting))
        self.index_edge_updates += 1

    def index_add(
        self, scope_key: Hashable, subnet_id: int, layers: Iterable[LayerId]
    ) -> None:
        """Start tracking readiness of ``subnet_id``'s stage slice.

        Cost is O(slice layers × currently-unreleased earlier users) —
        the one-time scan a queue rescan would otherwise repeat on every
        scheduler call.  Re-adding an id replaces its tracked slice.
        """
        scope = self._scopes.setdefault(scope_key, _ScopeIndex())
        if subnet_id in scope.layers:
            self.index_discard(scope_key, subnet_id)
        layer_list = list(layers)
        scope.layers[subnet_id] = layer_list
        edges: Set[_Edge] = set()
        entry = (scope_key, subnet_id)
        for layer in layer_list:
            self._watchers.setdefault(layer, set()).add(entry)
            for user in self._unreleased.get(layer, ()):
                if user >= subnet_id:
                    break  # sorted; no earlier unreleased users left
                edges.add((user, layer))
                self._waiters.setdefault((user, layer), set()).add(entry)
        scope.blocked[subnet_id] = edges
        self.index_edge_updates += len(edges)
        if not edges:
            insort(scope.ready, subnet_id)

    def index_discard(self, scope_key: Hashable, subnet_id: int) -> None:
        """Stop tracking ``subnet_id`` under ``scope_key`` (queue pop)."""
        scope = self._scopes.get(scope_key)
        if scope is None:
            return
        layer_list = scope.layers.pop(subnet_id, None)
        if layer_list is None:
            return
        entry = (scope_key, subnet_id)
        for layer in layer_list:
            watchers = self._watchers.get(layer)
            if watchers is not None:
                watchers.discard(entry)
                if not watchers:
                    del self._watchers[layer]
        for edge in scope.blocked.pop(subnet_id, ()):
            waiters = self._waiters.get(edge)
            if waiters is not None:
                waiters.discard(entry)
                if not waiters:
                    del self._waiters[edge]
        _sorted_remove(scope.ready, subnet_id)

    def has_scope(self, scope_key: Hashable) -> bool:
        return scope_key in self._scopes

    def is_indexed(self, scope_key: Hashable, subnet_id: int) -> bool:
        scope = self._scopes.get(scope_key)
        return scope is not None and subnet_id in scope.layers

    def indexed_ids(self, scope_key: Hashable) -> List[int]:
        scope = self._scopes.get(scope_key)
        return sorted(scope.layers) if scope is not None else []

    def ready_ids(self, scope_key: Hashable) -> List[int]:
        """Sorted CSP-clear subnet ids tracked under ``scope_key``."""
        scope = self._scopes.get(scope_key)
        return list(scope.ready) if scope is not None else []

    def ready_count(self, scope_key: Hashable) -> int:
        """``len(ready_ids(scope_key))`` without copying the list — the
        per-decision counter sample in the CSP policy only needs the
        size."""
        scope = self._scopes.get(scope_key)
        return len(scope.ready) if scope is not None else 0

    def first_ready(
        self, scope_key: Hashable, skip: Optional[Set[int]] = None
    ) -> Optional[int]:
        """Lowest ready id not in ``skip`` — the scheduler's O(1) pop."""
        scope = self._scopes.get(scope_key)
        if scope is None:
            return None
        if not skip:
            return scope.ready[0] if scope.ready else None
        for subnet_id in scope.ready:
            if subnet_id not in skip:
                return subnet_id
        return None

    def blocked_edge_count(self, scope_key: Hashable, subnet_id: int) -> int:
        scope = self._scopes.get(scope_key)
        if scope is None or subnet_id not in scope.blocked:
            return 0
        return len(scope.blocked[subnet_id])

    def overlay(self, scope_key: Hashable) -> "ReadinessOverlay":
        """A copy-on-write hypothetical view of one scope's readiness."""
        return ReadinessOverlay(self, scope_key)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_finished(self, subnet_id: int) -> bool:
        return subnet_id < self.frontier or subnet_id in self._finished

    def has_released(self, subnet_id: int, layer: LayerId) -> bool:
        if subnet_id < self.frontier:
            return True
        return layer in self._released.get(subnet_id, ())

    def blocking_user(
        self, subnet_id: int, layers: Iterable[LayerId]
    ) -> Optional[Tuple[int, LayerId]]:
        """First (earlier subnet, layer) pair still blocking ``subnet_id``.

        Returns None when every earlier user of every given layer has
        released it — i.e. the access is CSP-clear.
        """
        for layer in layers:
            for user in self._users.get(layer, ()):
                if user >= subnet_id:
                    break  # user lists are sorted; no earlier users left
                if not self.has_released(user, layer):
                    return user, layer
        return None

    def is_clear(self, subnet_id: int, layers: Iterable[LayerId]) -> bool:
        return self.blocking_user(subnet_id, layers) is None

    def dependency_exists(self, earlier_id: int, later_id: int) -> bool:
        """Whether two registered subnets share at least one layer."""
        earlier = self._subnets.get(earlier_id)
        later = self._subnets.get(later_id)
        if earlier is None or later is None:
            return False
        return later.depends_on(earlier)

    def active_subnets(self) -> List[int]:
        return sorted(self._subnets)

    def layer_users(self, layer: LayerId) -> List[int]:
        return list(self._users.get(layer, ()))

    def unreleased_users(self, layer: LayerId) -> List[int]:
        return list(self._unreleased.get(layer, ()))


class ReadinessOverlay:
    """Hypothetical readiness: base index + "assume these finished".

    The predictor's lookahead (Algorithm 3) asks "if subnets X finished,
    which queued forward clears next?" up to ``depth`` times.  Instead of
    re-scanning user lists, the overlay copies the scope's sorted ready
    list and lazily materialises per-entry blocked *counts* only for
    entries an assumed subnet actually blocks — copy-on-write over the
    live index, which stays untouched.
    """

    def __init__(self, tracker: DependencyTracker, scope_key: Hashable) -> None:
        scope = tracker._scopes.get(scope_key)
        if scope is None:
            raise SchedulingError(f"no readiness scope {scope_key!r}")
        self._tracker = tracker
        self._scope = scope
        self._scope_key = scope_key
        self._ready: List[int] = list(scope.ready)
        self._counts: Dict[int, int] = {}
        self._assumed: Set[int] = set()

    def assume_released(self, subnet_id: int) -> None:
        """Treat every layer of ``subnet_id`` as released (hypothetically)."""
        if subnet_id in self._assumed:
            return
        self._assumed.add(subnet_id)
        subnet = self._tracker._subnets.get(subnet_id)
        if subnet is None:
            return  # finished or never registered: blocks nothing
        decrements: Dict[int, int] = {}
        for layer in subnet.layer_ids():
            for scope_key, waiting in self._tracker._waiters.get(
                (subnet_id, layer), ()
            ):
                if scope_key == self._scope_key:
                    decrements[waiting] = decrements.get(waiting, 0) + 1
        for waiting, dec in decrements.items():
            count = self._counts.get(waiting)
            if count is None:
                count = len(self._scope.blocked[waiting])
            count -= dec
            self._counts[waiting] = count
            if count == 0:
                insort(self._ready, waiting)

    def is_clear(self, subnet_id: int) -> bool:
        count = self._counts.get(subnet_id)
        if count is not None:
            return count == 0
        edges = self._scope.blocked.get(subnet_id)
        if edges is None:
            raise SchedulingError(
                f"subnet {subnet_id} not indexed under {self._scope_key!r}"
            )
        return not edges

    def first_clear(self, skip: Optional[Set[int]] = None) -> Optional[int]:
        """Lowest hypothetically-clear indexed id not in ``skip``."""
        for subnet_id in self._ready:
            if skip and subnet_id in skip:
                continue
            return subnet_id
        return None
