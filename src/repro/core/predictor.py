"""Context prediction — the paper's Algorithm 3.

The predictor forecasts the next tasks each stage will schedule so that
the context manager can prefetch their layer parameters from pinned CPU
memory before execution needs them.  It exploits the paper's key
opportunity: DNN compute times are roughly deterministic, so re-running
the scheduler against *hypothetical* near-future state is an accurate
simulation of the real scheduler's next decisions.

Two call sites, mirroring Algorithm 1:

* before a **backward** runs (``predict_on_backward``): pretend the
  backward's WRITEs have committed, re-run SCHEDULE(); the produced
  forward task is very likely next — prefetch it.  Also absorb the
  pending-backward hints carried with the received gradient.
* before a **forward** runs (``predict_on_forward``): if this forward
  unblocks a pending backward recorded earlier, prefetch that backward's
  context; then re-run SCHEDULE() skipping the task being launched to
  prefetch the following forward.

``depth`` controls how many future forwards are prefetched per call (the
paper uses 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler
from repro.core.task import Task, TaskKind
from repro.nn.parameter_store import LayerId

__all__ = ["Prediction", "ContextPredictor"]


@dataclass(frozen=True)
class Prediction:
    """One forecast task whose context should be prefetched."""

    task: Task
    reason: str  # "after-backward" | "after-forward" | "pending-backward"


class ContextPredictor:
    """Per-stage forecast engine (one instance per pipeline stage)."""

    def __init__(
        self,
        stage: int,
        scheduler: CspScheduler,
        stage_layers_of: Callable[[int], Sequence[LayerId]],
        depth: int = 2,
    ) -> None:
        self.stage = stage
        self.scheduler = scheduler
        self.stage_layers_of = stage_layers_of
        self.depth = depth
        #: backward tasks reported blocked by later stages (L_blocked)
        self.blocked_backwards: List[int] = []
        self.predictions_made = 0

    # ------------------------------------------------------------------
    def _chain_forwards(
        self,
        queue: Sequence[int],
        tracker: DependencyTracker,
        assume_released: Set[int],
        skip: Set[int],
    ) -> List[int]:
        """Re-run SCHEDULE() up to ``depth`` times against hypothetical
        state: subnets in ``assume_released`` are treated as finished.

        When the tracker carries a readiness-index scope for this stage
        (the CSP policy's ``index`` scheduler mode), the lookahead is a
        copy-on-write :class:`~repro.core.dependency.ReadinessOverlay`
        over that index — O(affected edges) per assumed subnet instead of
        ``depth`` fresh scans of the per-layer user lists.  Otherwise the
        scan fallback below reproduces the original behaviour.
        """
        if tracker.has_scope(self.stage):
            return self._chain_forwards_indexed(
                tracker, assume_released, skip
            )
        return self._chain_forwards_scan(queue, tracker, assume_released, skip)

    def _chain_forwards_indexed(
        self,
        tracker: DependencyTracker,
        assume_released: Set[int],
        skip: Set[int],
    ) -> List[int]:
        overlay = tracker.overlay(self.stage)
        for subnet_id in sorted(assume_released):
            overlay.assume_released(subnet_id)
        picks: List[int] = []
        local_skip = set(skip)
        for _ in range(self.depth):
            chosen = overlay.first_clear(skip=local_skip)
            if chosen is None:
                break
            picks.append(chosen)
            local_skip.add(chosen)
            # Assume the pick runs to completion before the next forecast
            # step — optimistic, but that is exactly the paper's heuristic.
            overlay.assume_released(chosen)
        return picks

    def _chain_forwards_scan(
        self,
        queue: Sequence[int],
        tracker: DependencyTracker,
        assume_released: Set[int],
        skip: Set[int],
    ) -> List[int]:
        def layers_clear(subnet_id: int) -> bool:
            for layer in self.stage_layers_of(subnet_id):
                for user in tracker.layer_users(layer):
                    if user >= subnet_id:
                        break
                    if user in assume_released:
                        continue
                    if not tracker.has_released(user, layer):
                        return False
            return True

        picks: List[int] = []
        local_skip = set(skip)
        for _ in range(self.depth):
            chosen = None
            for qval in queue:
                if qval in local_skip:
                    continue
                if layers_clear(qval):
                    chosen = qval
                    break
            if chosen is None:
                break
            picks.append(chosen)
            local_skip.add(chosen)
            # Assume the pick runs to completion before the next forecast
            # step — optimistic, but that is exactly the paper's heuristic.
            assume_released = assume_released | {chosen}
        return picks

    # ------------------------------------------------------------------
    def predict_on_backward(
        self,
        backward_subnet: int,
        queue: Sequence[int],
        tracker: DependencyTracker,
        pending_backward_hints: Sequence[int] = (),
    ) -> List[Prediction]:
        """Algorithm 3, ``recv is not None`` branch."""
        self.predictions_made += 1
        for hint in pending_backward_hints:
            if hint not in self.blocked_backwards:
                self.blocked_backwards.append(hint)
        picks = self._chain_forwards(
            queue, tracker, assume_released={backward_subnet}, skip=set()
        )
        return [
            Prediction(Task(pick, self.stage, TaskKind.FORWARD), "after-backward")
            for pick in picks
        ]

    def predict_on_forward(
        self,
        forward_subnet: int,
        queue: Sequence[int],
        tracker: DependencyTracker,
    ) -> List[Prediction]:
        """Algorithm 3, forward branch (lines 13-19)."""
        self.predictions_made += 1
        predictions: List[Prediction] = []
        # Does launching this forward release a pending backward?  In the
        # pipeline, a blocked backward at a later stage waits for some
        # forward to arrive there; its precedence is the forward subnet.
        still_blocked: List[int] = []
        for bwd in self.blocked_backwards:
            if bwd == forward_subnet:
                predictions.append(
                    Prediction(
                        Task(bwd, self.stage, TaskKind.BACKWARD), "pending-backward"
                    )
                )
            else:
                still_blocked.append(bwd)
        self.blocked_backwards = still_blocked
        picks = self._chain_forwards(
            queue, tracker, assume_released=set(), skip={forward_subnet}
        )
        predictions.extend(
            Prediction(Task(pick, self.stage, TaskKind.FORWARD), "after-forward")
            for pick in picks
        )
        return predictions
