"""The paper's primary contribution: CSP pipeline scheduling.

Causal Synchronous Parallelism (Definition 2) requires that when subnets
``x < y`` share a layer, every access of ``y`` to that layer waits for
``x``'s WRITE.  This package implements:

* :class:`Task` — the minimal scheduling unit (a stage's forward or
  backward pass for one subnet);
* :class:`DependencyTracker` — per-layer release bookkeeping, the exact
  form of Definition 2's dependency-preservation property;
* :class:`CspScheduler` — Algorithm 2 (queue scan, lowest-ID-first,
  finished-list elimination), with both the paper's conservative
  stage-local check and the exact per-layer check;
* :class:`ContextPredictor` — Algorithm 3 (forecast the next scheduled
  tasks by re-running the scheduler against hypothetical state);
* :class:`StageContextManager` — pinned-CPU ↔ GPU parameter cache with
  prefetch/evict and cache-hit accounting;
* :class:`CspStageState` — the per-stage runtime lists of Algorithm 1
  (queue list, finished list, subnet list).
"""

from repro.core.task import Task, TaskKind
from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler, ScheduleDecision
from repro.core.predictor import ContextPredictor, Prediction
from repro.core.context_manager import StageContextManager
from repro.core.runtime import CspStageState

__all__ = [
    "Task",
    "TaskKind",
    "DependencyTracker",
    "CspScheduler",
    "ScheduleDecision",
    "ContextPredictor",
    "Prediction",
    "StageContextManager",
    "CspStageState",
]
