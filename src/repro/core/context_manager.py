"""Per-stage GPU parameter cache with prefetch/evict (paper §3.3, §4.2).

The whole supernet lives in pinned CPU memory; a stage's GPU holds only a
bounded cache of candidate-layer parameters (≈3× one subnet's stage share
in NASPipe: the subnet being executed, the previous one draining out, the
next one prefetching in).  Copies ride the GPU's asynchronous copy engine
and overlap compute, exactly like ``tensor.copy_(non_blocking=True)`` from
pinned memory.

Cache-hit accounting matches the paper's metric: "when a layer in a choice
block is activated, the layer already resides in GPU memory".  A miss
forces a synchronous fetch — the GPU idles until the copy lands, recorded
as a stall.

Eviction is LRU over *unpinned* layers; layers are pinned while any
in-flight subnet at this stage still needs them (fetch-in-progress or
forward-done-awaiting-backward).  Dirty layers (updated by a backward)
are written back to CPU on eviction, consuming copy-engine bandwidth.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.nn.parameter_store import LayerId
from repro.sim.devices import CopyEngine
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.supernet.supernet import Supernet

__all__ = ["StageContextManager", "FetchPlan"]


@dataclass(frozen=True)
class FetchPlan:
    """Outcome of requesting residency for a task's layer set."""

    ready_time: float  # when every layer will be resident
    hits: int
    misses: int
    fetched_bytes: int

    @property
    def is_hit(self) -> bool:
        return self.misses == 0


@dataclass
class _CacheEntry:
    nbytes: int
    pins: int = 0
    dirty: bool = False
    ready_at: float = 0.0  # copy completion time (0 when long resident)


class StageContextManager:
    """LRU parameter cache for one pipeline stage."""

    def __init__(
        self,
        stage: int,
        supernet: Supernet,
        copy_engine: CopyEngine,
        capacity_bytes: int,
        trace: Optional[ExecutionTrace] = None,
    ) -> None:
        self.stage = stage
        self.supernet = supernet
        self.copy_engine = copy_engine
        self.capacity_bytes = capacity_bytes
        self.trace = trace
        self._entries: "OrderedDict[LayerId, _CacheEntry]" = OrderedDict()
        #: per-layer param_bytes memo — ``_fetch`` runs ~6 times per task
        #: and the profile lookup chain is measurable at that rate
        self._nbytes_of: Dict[LayerId, int] = {}
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.writeback_bytes = 0
        self.fetch_bytes = 0
        self.prefetch_requests = 0
        self.hits = 0
        self.misses = 0
        #: degraded-mode flag (repro.ft.degradation): while True,
        #: speculative prefetches are suppressed so demand fetches own
        #: the (stalled) copy engine
        self.throttled = False
        self.throttled_prefetches = 0

    # ------------------------------------------------------------------
    # residency primitives
    # ------------------------------------------------------------------
    def is_resident(self, layer: LayerId, now: float) -> bool:
        entry = self._entries.get(layer)
        return entry is not None and entry.ready_at <= now

    def _touch(self, layer: LayerId) -> None:
        self._entries.move_to_end(layer)

    def _evict_for(self, needed: int, now: float) -> None:
        """Evict LRU unpinned layers until ``needed`` bytes fit.

        Over-capacity with everything pinned is tolerated (the real system
        delays copies in that case; modelling the delay as an immediate
        grow keeps the simulation deadlock-free and errs *against*
        NASPipe's reported memory efficiency).
        """
        if needed > self.capacity_bytes:
            return  # single working set larger than cache: run oversubscribed
        if self.resident_bytes + needed <= self.capacity_bytes:
            return  # already fits: skip the LRU walk (the common case)
        for layer in list(self._entries):
            if self.resident_bytes + needed <= self.capacity_bytes:
                break
            entry = self._entries[layer]
            if entry.pins > 0 or entry.ready_at > now:
                continue
            self._entries.pop(layer)
            self.resident_bytes -= entry.nbytes
            self._record_eviction(layer, entry, now, reason="lru")
            if entry.dirty:
                # Write the updated parameters back to pinned CPU memory.
                self.copy_engine.enqueue(entry.nbytes, now)
                self.writeback_bytes += entry.nbytes

    def _record_eviction(
        self, layer: LayerId, entry: _CacheEntry, now: float, reason: str
    ) -> None:
        if self.trace is not None:
            self.trace.append_event(
                TraceEvent(
                    "eviction",
                    now,
                    self.stage,
                    -1,
                    (
                        ("block", layer[0]),
                        ("choice", layer[1]),
                        ("nbytes", entry.nbytes),
                        ("dirty", entry.dirty),
                        ("reason", reason),
                    ),
                )
            )

    def _fetch(
        self, layer: LayerId, now: float, demand: bool = False
    ) -> Tuple[float, int]:
        """Start an async copy of ``layer``; returns (completion, nbytes).

        ``demand`` marks copies started by a task's own acquire (miss on
        the critical path) as opposed to predictor prefetches; the flag
        only annotates the emitted ``prefetch_issue``/``prefetch_land``
        events, the copy mechanics are identical.
        """
        nbytes = self._nbytes_of.get(layer)
        if nbytes is None:
            nbytes = self.supernet.profile(layer).param_bytes
            self._nbytes_of[layer] = nbytes
        self._evict_for(nbytes, now)
        completion = self.copy_engine.enqueue(nbytes, now)
        self._entries[layer] = _CacheEntry(nbytes=nbytes, ready_at=completion)
        self.resident_bytes += nbytes
        if self.resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self.resident_bytes
        self.fetch_bytes += nbytes
        if self.trace is not None:
            block, choice = layer
            self.trace.append_event(
                TraceEvent(
                    "prefetch_issue",
                    now,
                    self.stage,
                    -1,
                    (
                        ("block", block),
                        ("choice", choice),
                        ("nbytes", nbytes),
                        ("demand", demand),
                        ("land", completion),
                    ),
                )
            )
            self.trace.append_event(
                TraceEvent(
                    "prefetch_land",
                    completion,
                    self.stage,
                    -1,
                    (
                        ("block", block),
                        ("choice", choice),
                        ("nbytes", nbytes),
                        ("demand", demand),
                    ),
                )
            )
        return completion, nbytes

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def peek_residency(
        self, layers: Iterable[LayerId], now: float
    ) -> Tuple[int, int]:
        """Count ``(resident, absent_or_in_flight)`` without side effects.

        Unlike :meth:`acquire_for_task` this neither pins, fetches,
        touches LRU order nor increments the hit/miss counters — it is a
        pure observation, so callers (the serving plane's locality
        accounting, admission heuristics) can inspect the cache without
        perturbing its deterministic eviction order.
        """
        resident = 0
        absent = 0
        for layer in layers:
            entry = self._entries.get(layer)
            if entry is not None and entry.ready_at <= now:
                resident += 1
            else:
                absent += 1
        return resident, absent

    def prefetch(self, layers: Iterable[LayerId], now: float) -> float:
        """Asynchronously fetch any non-resident layers (predictor path).

        Returns the time the whole group becomes resident.
        """
        self.prefetch_requests += 1
        ready = now
        for layer in layers:
            entry = self._entries.get(layer)
            if entry is not None:
                self._touch(layer)
                ready = max(ready, entry.ready_at)
            elif self.throttled:
                # Copy engine stalled: skip the speculative copy.  The
                # layer will be demand-fetched by acquire_for_task, which
                # then queues behind no prefetch traffic.
                self.throttled_prefetches += 1
            else:
                completion, _ = self._fetch(layer, now)
                ready = max(ready, completion)
        return ready

    def acquire_for_task(
        self, layers: Iterable[LayerId], now: float
    ) -> FetchPlan:
        """Demand residency for a task's layers; pins them; counts hits.

        Layers already resident (copy landed) are hits; layers absent or
        still in flight are misses and the task must stall until
        ``ready_time``.  ``fetched_bytes`` counts only copies *started by
        this call* — a miss on a still-in-flight prefetch stalls but does
        not re-pay the copy, so those bytes are intentionally excluded
        (they were charged to ``fetch_bytes`` when the prefetch issued).
        """
        hits = 0
        misses = 0
        fetched = 0
        ready = now
        entries = self._entries
        for layer in layers:
            entry = entries.get(layer)
            if entry is not None and entry.ready_at <= now:
                hits += 1
                entries.move_to_end(layer)
            else:
                misses += 1
                if entry is None:
                    completion, nbytes = self._fetch(layer, now, demand=True)
                    fetched += nbytes
                    entry = entries[layer]
                else:
                    completion = entry.ready_at
                    entries.move_to_end(layer)
                ready = max(ready, completion)
            entry.pins += 1
        self.hits += hits
        self.misses += misses
        if self.trace is not None:
            self.trace.record_cache_access(True, hits)
            self.trace.record_cache_access(False, misses)
            self.trace.append_event(
                TraceEvent(
                    "cache_access",
                    now,
                    self.stage,
                    -1,
                    (("hits", hits), ("misses", misses)),
                )
            )
        return FetchPlan(ready_time=ready, hits=hits, misses=misses, fetched_bytes=fetched)

    def release_after_task(
        self, layers: Iterable[LayerId], now: float, dirty: bool
    ) -> None:
        """Unpin a task's layers; mark dirty after a backward (WRITE)."""
        for layer in layers:
            entry = self._entries.get(layer)
            if entry is None:
                continue
            entry.pins = max(0, entry.pins - 1)
            if dirty:
                entry.dirty = True
        # Opportunistically shrink back under capacity.
        self._evict_for(0, now)

    def evict_subnet(self, layers: Iterable[LayerId], now: float) -> None:
        """Eagerly evict a finished subnet's layers (paper: EVICT call).

        Entries whose copy has not landed yet (``ready_at > now``) are
        skipped: evicting an in-flight prefetch would drop the entry
        while its bytes are still crossing PCIe, and the next acquire
        would pay for the same copy twice.
        """
        for layer in layers:
            entry = self._entries.get(layer)
            if entry is None or entry.pins > 0 or entry.ready_at > now:
                continue
            self._entries.pop(layer)
            self.resident_bytes -= entry.nbytes
            self._record_eviction(layer, entry, now, reason="evict")
            if entry.dirty:
                self.copy_engine.enqueue(entry.nbytes, now)
                self.writeback_bytes += entry.nbytes

    # ------------------------------------------------------------------
    def oversubscription(self) -> float:
        """Resident bytes over capacity (1.0 = exactly full)."""
        if self.capacity_bytes <= 0:
            return float("inf") if self.resident_bytes else 0.0
        return self.resident_bytes / self.capacity_bytes

    def reclaim(self, now: float) -> int:
        """Best-effort eviction of unpinned entries (OOM recovery path).

        Returns bytes freed.  Mirrors the real system's reaction to a
        CUDA out-of-memory: drop everything droppable, then retry.
        """
        before = self.resident_bytes
        for layer in list(self._entries):
            entry = self._entries[layer]
            if entry.pins > 0 or entry.ready_at > now:
                continue
            self._entries.pop(layer)
            self.resident_bytes -= entry.nbytes
            self._record_eviction(layer, entry, now, reason="reclaim")
            if entry.dirty:
                self.copy_engine.enqueue(entry.nbytes, now)
                self.writeback_bytes += entry.nbytes
        return before - self.resident_bytes

    def hit_rate(self) -> Optional[float]:
        total = self.hits + self.misses
        if total == 0:
            return None
        return self.hits / total

    def resident_layer_count(self) -> int:
        return len(self._entries)
