"""Per-stage runtime state — the lists of the paper's Algorithm 1.

Each pipeline stage (one GPU worker) owns:

* ``queue`` (L_q) — subnet IDs whose forward input has arrived but whose
  forward has not been scheduled, kept sorted by sequence ID so the
  scheduler's in-order scan realises lowest-ID-first priority;
* ``backward_ready`` — subnet IDs whose backward input (gradient from the
  next stage, or loss at the last stage) has arrived;
* ``stage_finished`` (L_f) — subnet IDs whose backward has completed at
  *this* stage, pruned by the elimination scheme;
* ``known`` (L_SN) — the subnet descriptors this stage has retrieved.

The state object is pure bookkeeping; decisions are made by the scheduler
and the engine, which keeps this faithful to the paper's decentralised
design (every stage could run this privately).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.errors import SchedulingError
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.supernet.subnet import Subnet

__all__ = ["CspStageState"]


@dataclass
class CspStageState:
    stage: int
    queue: List[int] = field(default_factory=list)
    backward_ready: List[int] = field(default_factory=list)
    stage_finished: Set[int] = field(default_factory=set)
    known: Dict[int, Subnet] = field(default_factory=dict)
    #: subnets whose forward ran here and whose backward has not yet
    busy_subnets: Set[int] = field(default_factory=set)
    #: queue observers — the CSP policy's readiness index mirrors the
    #: forward queue through these callbacks (None = nobody listening)
    on_enqueue: Optional[Callable[[int], None]] = field(
        default=None, repr=False, compare=False
    )
    on_pop: Optional[Callable[[int], None]] = field(
        default=None, repr=False, compare=False
    )
    #: observability sink + virtual clock — when both are set, every
    #: queue mutation emits a ``queue_depth`` counter sample so the
    #: exporter can draw per-stage L_q / backward-ready depth tracks
    trace: Optional[ExecutionTrace] = field(
        default=None, repr=False, compare=False
    )
    clock: Optional[Callable[[], float]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def _sample_depth(self) -> None:
        if self.trace is not None and self.clock is not None:
            self.trace.append_event(
                TraceEvent(
                    "queue_depth",
                    self.clock(),
                    self.stage,
                    -1,
                    (
                        ("fwd", len(self.queue)),
                        ("bwd", len(self.backward_ready)),
                    ),
                )
            )

    # ------------------------------------------------------------------
    def attach_queue_observer(
        self,
        on_enqueue: Callable[[int], None],
        on_pop: Callable[[int], None],
    ) -> None:
        """Subscribe to forward-queue membership changes.

        The observer sees every id *after* it entered the queue and
        *after* it left, so an index maintained from these callbacks is
        always an exact mirror of ``queue``.
        """
        self.on_enqueue = on_enqueue
        self.on_pop = on_pop

    def retrieve(self, subnet: Subnet) -> None:
        """L_SN.append(retrieve()) — learn a subnet descriptor."""
        self.known[subnet.subnet_id] = subnet

    def enqueue_forward(self, subnet_id: int) -> None:
        """A forward input arrived at this stage (receiveFwd)."""
        if subnet_id in self.queue:
            raise SchedulingError(
                f"stage {self.stage}: duplicate forward arrival for {subnet_id}"
            )
        insort(self.queue, subnet_id)
        self._sample_depth()
        if self.on_enqueue is not None:
            self.on_enqueue(subnet_id)

    def pop_forward(self, subnet_id: int) -> None:
        """L_q.pop(qidx) after the scheduler picked ``subnet_id``."""
        try:
            self.queue.remove(subnet_id)
        except ValueError:
            raise SchedulingError(
                f"stage {self.stage}: scheduled {subnet_id} not in queue"
            ) from None
        self.busy_subnets.add(subnet_id)
        self._sample_depth()
        if self.on_pop is not None:
            self.on_pop(subnet_id)

    def enqueue_backward(self, subnet_id: int) -> None:
        """A backward input arrived (receiveBwd / last-stage loss)."""
        if subnet_id in self.backward_ready:
            raise SchedulingError(
                f"stage {self.stage}: duplicate backward arrival for {subnet_id}"
            )
        insort(self.backward_ready, subnet_id)
        self._sample_depth()

    def pop_backward(self) -> Optional[int]:
        """Lowest-ID ready backward, or None (backward-first priority)."""
        if not self.backward_ready:
            return None
        subnet_id = self.backward_ready.pop(0)
        self._sample_depth()
        return subnet_id

    def finish_backward(self, subnet_id: int, frontier: int) -> None:
        """flush + L_f.append, then prune ids below the global frontier."""
        self.stage_finished.add(subnet_id)
        self.busy_subnets.discard(subnet_id)
        if frontier:
            self.stage_finished = {
                sid for sid in self.stage_finished if sid >= frontier
            }

    # ------------------------------------------------------------------
    def subnet(self, subnet_id: int) -> Subnet:
        try:
            return self.known[subnet_id]
        except KeyError:
            raise SchedulingError(
                f"stage {self.stage}: unknown subnet {subnet_id}"
            ) from None

    @property
    def has_work(self) -> bool:
        return bool(self.queue or self.backward_ready)
