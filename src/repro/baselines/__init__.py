"""Preconfigured systems: NASPipe, the paper's three baselines, Retiarii's
parameter-server pattern, the SSP extension, and the §5.3 ablations."""

from repro.baselines.systems import (
    ALL_SYSTEMS,
    ABLATIONS,
    gpipe,
    naspipe,
    naspipe_wo_mirroring,
    naspipe_wo_predictor,
    naspipe_wo_scheduler,
    pipedream,
    ssp,
    system_by_name,
    vpipe,
)
from repro.baselines.retiarii_ps import RetiariiParameterServer

__all__ = [
    "ALL_SYSTEMS",
    "ABLATIONS",
    "naspipe",
    "gpipe",
    "pipedream",
    "vpipe",
    "ssp",
    "naspipe_wo_scheduler",
    "naspipe_wo_predictor",
    "naspipe_wo_mirroring",
    "system_by_name",
    "RetiariiParameterServer",
]
