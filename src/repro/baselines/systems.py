"""System configuration factories (paper §5 "Baseline Systems" + §5.3).

Each factory returns a :class:`~repro.config.SystemConfig`; feed it to a
:class:`~repro.engines.pipeline.PipelineEngine` to run that system.

=====================  ====  ===========  ========  =====================
system                 sync  partitioning context    distinguishing trait
=====================  ====  ===========  ========  =====================
NASPipe                CSP   balanced     cached 3×  scheduler+predictor+mirroring
GPipe                  BSP   static       full       rematerialisation, flush
PipeDream              ASP   static       full       1F1B, async updates
VPipe                  BSP   static       cached 1×  parameter swapping
SSP(s)                 SSP   static       full       bounded staleness
NASPipe w/o scheduler  CSP   balanced     cached 3×  in-order injection only
NASPipe w/o predictor  CSP   balanced     full       no swapping → small batch
NASPipe w/o mirroring  CSP   static       cached 3×  stuck with static partition
=====================  ====  ===========  ========  =====================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.config import SystemConfig

__all__ = [
    "naspipe",
    "gpipe",
    "pipedream",
    "vpipe",
    "ssp",
    "naspipe_wo_scheduler",
    "naspipe_wo_predictor",
    "naspipe_wo_mirroring",
    "ALL_SYSTEMS",
    "ABLATIONS",
    "system_by_name",
]


def naspipe(**overrides) -> SystemConfig:
    """The full system: CSP + balanced partitions + predictor + mirroring."""
    config = SystemConfig(
        name="NASPipe",
        sync="csp",
        partitioning="balanced",
        context="cached",
        cache_subnets=3.0,
        predictor=True,
        recompute=True,
        mirroring=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def gpipe(**overrides) -> SystemConfig:
    """GPipe: BSP flushes, full supernet resident, rematerialisation."""
    config = SystemConfig(
        name="GPipe",
        sync="bsp",
        partitioning="static",
        context="full",
        predictor=False,
        recompute=True,
        mirroring=False,
    )
    return config.with_overrides(**overrides) if overrides else config


def pipedream(**overrides) -> SystemConfig:
    """PipeDream: ASP (1F1B, async commits), no rematerialisation."""
    config = SystemConfig(
        name="PipeDream",
        sync="asp",
        partitioning="static",
        context="full",
        predictor=False,
        recompute=False,
        mirroring=False,
    )
    return config.with_overrides(**overrides) if overrides else config


def vpipe(**overrides) -> SystemConfig:
    """VPipe: BSP + parameter swapping with a one-subnet cache."""
    config = SystemConfig(
        name="VPipe",
        sync="bsp",
        partitioning="static",
        context="cached",
        cache_subnets=1.0,
        predictor=False,
        recompute=True,
        mirroring=False,
    )
    return config.with_overrides(**overrides) if overrides else config


def ssp(staleness: int = 4, **overrides) -> SystemConfig:
    """Stale-synchronous extension baseline (bounded staleness, no causal
    order) — demonstrates CSP is not merely staleness reduction."""
    config = SystemConfig(
        name=f"SSP(s={staleness})",
        sync="ssp",
        partitioning="static",
        context="full",
        predictor=False,
        recompute=True,
        mirroring=False,
        staleness=staleness,
    )
    return config.with_overrides(**overrides) if overrides else config


# ----------------------------------------------------------------------
# §5.3 ablations
# ----------------------------------------------------------------------
def naspipe_wo_scheduler(**overrides) -> SystemConfig:
    """CSP without aggressive reordering: only the head of each stage
    queue may run, so a blocked subnet stalls everything behind it —
    "finish the execution of a pipeline before injecting the next"."""
    return naspipe(name="NASPipe w/o scheduler", in_order_only=True, **overrides)


def naspipe_wo_predictor(**overrides) -> SystemConfig:
    """No context prediction: the whole supernet is stored in GPU memory,
    shrinking the supported batch to GPipe's."""
    return naspipe(
        name="NASPipe w/o predictor", predictor=False, context="full", **overrides
    )


def naspipe_wo_mirroring(**overrides) -> SystemConfig:
    """No mirroring: every subnet is stuck with the static partition's
    imbalance (the slowest stage bottlenecks each subnet)."""
    return naspipe(
        name="NASPipe w/o mirroring",
        mirroring=False,
        partitioning="static",
        **overrides,
    )


_FACTORIES: Dict[str, Callable[..., SystemConfig]] = {
    "NASPipe": naspipe,
    "GPipe": gpipe,
    "PipeDream": pipedream,
    "VPipe": vpipe,
    "NASPipe w/o scheduler": naspipe_wo_scheduler,
    "NASPipe w/o predictor": naspipe_wo_predictor,
    "NASPipe w/o mirroring": naspipe_wo_mirroring,
}

#: The four systems of Figures 4/5 and Table 2, in paper order.
ALL_SYSTEMS: List[str] = ["NASPipe", "GPipe", "PipeDream", "VPipe"]

#: The four systems of Figure 6.
ABLATIONS: List[str] = [
    "NASPipe",
    "NASPipe w/o scheduler",
    "NASPipe w/o predictor",
    "NASPipe w/o mirroring",
]


def system_by_name(name: str, **overrides) -> SystemConfig:
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(**overrides)
