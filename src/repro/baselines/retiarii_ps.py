"""Retiarii's wrapped data parallelism with a global parameter server.

The paper does not benchmark Retiarii's executor (it cannot hold the large
supernets at all), but §2.2 argues against its design: one subnet per GPU,
synchronised through an *external global* parameter server.  This model
implements that pattern over the same functional plane so the repo can
(a) demonstrate the BSP-style non-reproducibility of bulk PS updates and
(b) quantify the synchronisation-server bottleneck the paper calls
"neither scalable nor efficient".

Timing model: each worker trains whole subnets locally; every parameter
pull/push of a subnet's full context serialises through the PS's single
network interface (FIFO), which is the scalability ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engines.functional_plane import FunctionalPlane
from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet

__all__ = ["RetiariiParameterServer", "RetiariiResult"]

_PS_BANDWIDTH_BYTES_PER_MS = 867 * 1_000_000 / 1_000.0  # one NIC for the PS


@dataclass
class RetiariiResult:
    subnets_completed: int
    makespan_ms: float
    losses: Dict[int, float]
    digest: Optional[str]
    ps_busy_ms: float

    @property
    def ps_utilisation(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return min(1.0, self.ps_busy_ms / self.makespan_ms)


class RetiariiParameterServer:
    """One-subnet-per-GPU data parallelism with bulk PS synchronisation."""

    def __init__(
        self,
        supernet: Supernet,
        stream: SubnetStream,
        functional: FunctionalPlane,
        num_workers: int = 8,
        batch: Optional[int] = None,
    ) -> None:
        self.supernet = supernet
        self.stream = stream
        self.functional = functional
        self.num_workers = num_workers
        self.batch = batch if batch is not None else supernet.space.max_batch

    # ------------------------------------------------------------------
    def run(self) -> RetiariiResult:
        """Bulk-train: workers each take one subnet; the PS applies all
        updates at the bulk barrier (Retiarii's BSP pattern)."""
        losses: Dict[int, float] = {}
        clock_ms = 0.0
        ps_free = 0.0
        ps_busy = 0.0
        self.stream.reset()
        while True:
            bulk = []
            for _ in range(self.num_workers):
                subnet = self.stream.retrieve()
                if subnet is None:
                    break
                bulk.append(subnet)
            if not bulk:
                break
            # Workers compute in parallel against the pre-bulk snapshot.
            bulk_updates = []
            compute_ms = 0.0
            for subnet in bulk:
                stage_input = self.functional.input_for(subnet)
                activation = self.functional.forward_stage(
                    subnet, 0, (0, subnet.num_blocks), stage_input, clock_ms
                )
                loss, dfinal = self.functional.loss_and_grad(
                    subnet, activation.stage_output
                )
                _dx, updates = self.functional.backward_stage(activation, dfinal)
                bulk_updates.append((subnet.subnet_id, updates))
                losses[subnet.subnet_id] = float(loss)
                compute_ms = max(
                    compute_ms, self.supernet.subnet_total_ms(subnet, self.batch)
                )
            # PS phase: every worker pushes its subnet's parameters through
            # the server's single NIC — the serialisation bottleneck.
            clock_ms += compute_ms
            for subnet_id, updates in sorted(bulk_updates):
                push_bytes = self.supernet.subnet_param_bytes(
                    self._subnet_by_id(subnet_id, bulk)
                )
                start = max(clock_ms, ps_free)
                duration = push_bytes / _PS_BANDWIDTH_BYTES_PER_MS
                ps_free = start + duration
                ps_busy += duration
                self.functional.commit(updates, ps_free)
            clock_ms = ps_free
        return RetiariiResult(
            subnets_completed=len(losses),
            makespan_ms=clock_ms,
            losses=losses,
            digest=self.functional.digest(),
            ps_busy_ms=ps_busy,
        )

    @staticmethod
    def _subnet_by_id(subnet_id: int, bulk) -> object:
        for subnet in bulk:
            if subnet.subnet_id == subnet_id:
                return subnet
        raise KeyError(subnet_id)
