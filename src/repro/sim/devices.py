"""Device models: GPUs, PCIe copy engines, inter-stage links.

All three are *occupancy* models: a device serves one request at a time
and requests queue FIFO.  That is the level of fidelity the paper's
metrics need — bubble ratio and ALU utilisation are functions of when each
GPU is busy, cache hit rate is a function of whether a copy finished
before the compute that needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import GpuOutOfMemoryError

__all__ = ["GpuDevice", "CopyEngine", "Link"]


@dataclass
class GpuDevice:
    """One simulated GPU: serial compute plus a memory ledger.

    ``memory_capacity`` is in bytes (11 GB on the paper's 2080Ti).  The
    ledger tracks *parameter* residency; activation footprints are sized
    statically by :mod:`repro.memory_model` when choosing the batch, which
    mirrors how the real systems pick a batch size before the run.
    """

    gpu_id: int
    memory_capacity: int
    busy_until: float = 0.0
    resident_bytes: int = 0
    reserved_bytes: int = 0  # framework / workspace overhead
    _resident: Dict[object, int] = field(default_factory=dict)
    #: physical slot this device occupies in a shared fleet (set when the
    #: device is materialised from a :class:`repro.service.lease.DeviceLease`;
    #: ``None`` for engines that own their whole cluster, where stage
    #: index and physical identity coincide).
    slot: Optional[int] = None

    @property
    def physical_slot(self) -> int:
        """Fleet-wide identity of this GPU (== ``gpu_id`` outside a lease)."""
        return self.gpu_id if self.slot is None else self.slot

    @property
    def free_bytes(self) -> int:
        return self.memory_capacity - self.reserved_bytes - self.resident_bytes

    def is_busy(self, now: float) -> bool:
        """Whether compute is occupied at ``now`` (serial device, so any
        task started before ``busy_until`` blocks the next one)."""
        return self.busy_until > now

    def can_fit(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def allocate(self, key: object, nbytes: int) -> None:
        """Pin ``nbytes`` under ``key`` (a layer id or context handle)."""
        if key in self._resident:
            return
        if not self.can_fit(nbytes):
            raise GpuOutOfMemoryError(self.gpu_id, nbytes, self.free_bytes)
        self._resident[key] = nbytes
        self.resident_bytes += nbytes

    def free(self, key: object) -> int:
        """Release the allocation under ``key``; returns bytes freed."""
        nbytes = self._resident.pop(key, 0)
        self.resident_bytes -= nbytes
        return nbytes

    def holds(self, key: object) -> bool:
        return key in self._resident

    def resident_keys(self) -> List[object]:
        return list(self._resident)


@dataclass
class CopyEngine:
    """Asynchronous CPU↔GPU copy engine (one per GPU), FIFO over PCIe.

    PyTorch's ``copy_(non_blocking=True)`` from pinned memory maps to one
    DMA engine that runs concurrently with compute — so a copy's finish
    time depends only on queueing at this engine, never on the GPU's
    compute occupancy.
    """

    gpu_id: int
    bandwidth_bytes_per_ms: float
    next_free: float = 0.0
    total_bytes_copied: int = 0
    total_copies: int = 0

    def enqueue(self, nbytes: int, now: float) -> float:
        """Enqueue a copy of ``nbytes``; returns its completion time."""
        start = max(now, self.next_free)
        duration = nbytes / self.bandwidth_bytes_per_ms
        self.next_free = start + duration
        self.total_bytes_copied += nbytes
        self.total_copies += 1
        return self.next_free

    def would_complete_at(self, nbytes: int, now: float) -> float:
        """Completion time a copy *would* get, without enqueuing it."""
        start = max(now, self.next_free)
        return start + nbytes / self.bandwidth_bytes_per_ms


@dataclass
class Link:
    """A FIFO point-to-point transfer channel between adjacent stages."""

    src: int
    dst: int
    bandwidth_bytes_per_ms: float
    latency_ms: float = 0.17  # the testbed's average ping
    next_free: float = 0.0
    total_bytes: int = 0

    def transfer(self, nbytes: int, now: float) -> float:
        """Enqueue a transfer; returns delivery time at the destination."""
        start = max(now, self.next_free)
        duration = nbytes / self.bandwidth_bytes_per_ms
        self.next_free = start + duration
        self.total_bytes += nbytes
        return self.next_free + self.latency_ms
