"""Deterministic discrete-event simulation of a GPU cluster.

This package stands in for the paper's testbed (8 hosts × 4 Nvidia 2080Ti,
PCIe 3.0 ×16, 40 GbE).  It models exactly the resources the paper's claims
depend on:

* per-GPU compute occupancy (one task at a time) with busy-interval
  tracing — source of the bubble-ratio and ALU-utilisation metrics;
* one asynchronous copy engine per GPU for CPU↔GPU parameter swaps over
  PCIe (15 760 MB/s), overlapping compute, FIFO per GPU;
* FIFO inter-stage links for activation/gradient transfers (867 MB/s
  effective, the paper's measured ceiling);
* a virtual clock with deterministic tie-breaking, so a simulation is a
  pure function of its inputs.
"""

from repro.sim.clock import EventQueue, ScheduledEvent
from repro.sim.engine import SimulationEngine
from repro.sim.devices import CopyEngine, GpuDevice, Link
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.trace import BusyInterval, ExecutionTrace

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "SimulationEngine",
    "CopyEngine",
    "GpuDevice",
    "Link",
    "Cluster",
    "ClusterSpec",
    "BusyInterval",
    "ExecutionTrace",
]
