"""Event queue with a virtual clock and deterministic ordering.

Events at equal times pop in scheduling order (a monotonically increasing
sequence number breaks ties), so two runs of the same scenario interleave
identically — a precondition for the reproducibility experiments, where
the *simulation itself* must be deterministic before CSP vs BSP/ASP
differences mean anything.

Because the total order ``(time, priority, sequence)`` is unique, *any*
correct priority-queue implementation pops the same sequence of events.
That freedom is what lets the queue pick its backing store by load:

* a binary **heap** for small/sparse queues (the common pipeline case:
  a few tens of pending completions), and
* a slot-indexed **calendar queue** (Brown 1988) once the population
  grows — chaos sweeps pre-schedule whole fault timetables, where the
  calendar's O(1) expected enqueue/dequeue beats the heap's O(log n).
  Degenerate time distributions (a sparse horizon that forces year-long
  bucket scans) are detected and demote the queue back to the heap.

Accounting is O(1) throughout: a live-event counter is maintained on
``schedule``/``cancel``/``pop``, so ``len()`` and ``clear()`` never walk
the store, and the store is compacted when cancelled events outnumber
live ones (fault injectors cancel whole timetables at once).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

__all__ = ["ScheduledEvent", "EventQueue", "DEFAULT_BACKEND"]

#: default backend policy for new queues; tests monkeypatch this to force
#: one store ("heap" / "calendar") and prove decision-identity.
DEFAULT_BACKEND = "auto"

_BACKENDS = ("auto", "heap", "calendar")

#: auto policy: promote heap -> calendar at this many stored events ...
_CALENDAR_ENTER = 64
#: ... and demote calendar -> heap when the live population falls below.
_CALENDAR_EXIT = 16
#: direct-search refills tolerated before the horizon is deemed sparse
#: and the auto policy bans the calendar for this queue.
_SPARSE_STRIKES = 3
#: never compact below this many cancelled entries (tiny stores are fine).
_COMPACT_MIN = 64


@dataclass(order=True)
class ScheduledEvent:
    """One pending event; ordering is (time, priority, sequence)."""

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: owning queue while the event is stored (detached on pop/clear) —
    #: lets ``cancel()`` decrement the live counter in O(1).
    _queue: Optional["EventQueue"] = field(compare=False, default=None, repr=False)
    #: queue epoch at schedule time; a ``clear()`` bumps the epoch so
    #: stale handles cancelled afterwards don't corrupt the counters.
    _epoch: int = field(compare=False, default=0, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel(self)


class _CalendarQueue:
    """Slot-indexed calendar of :class:`ScheduledEvent` (Brown 1988).

    Events hash into ``nbuckets`` time slots of ``width`` virtual ms;
    each bucket is a sorted list.  Dequeue scans slots from a persistent
    cursor within the current "year"; a full fruitless year falls back
    to a direct search over bucket heads (counted in ``sparse_strikes``
    so the owner can demote to a heap).  All sizing decisions are pure
    functions of the stored events — deterministic across runs.
    """

    __slots__ = (
        "buckets",
        "nbuckets",
        "mask",
        "width",
        "count",
        "cursor",
        "top",
        "sparse_strikes",
    )

    def __init__(self, events: List[ScheduledEvent], now: float) -> None:
        n = 8
        while n < len(events):
            n <<= 1
        self.nbuckets = n
        self.mask = n - 1
        self.width = self._estimate_width(events)
        self.buckets: List[List[ScheduledEvent]] = [[] for _ in range(n)]
        self.count = 0
        self.sparse_strikes = 0
        base = now
        if events:
            earliest = min(event.time for event in events)
            if earliest < base:
                base = earliest
        self._set_cursor(base)
        for event in events:
            slot = int(event.time / self.width)
            insort(self.buckets[slot & self.mask], event)
            self.count += 1

    @staticmethod
    def _estimate_width(events: List[ScheduledEvent]) -> float:
        """Bucket width = 3x the mean gap between distinct event times
        (sampled); degenerates to 1.0 when all samples coincide."""
        if len(events) < 2:
            return 1.0
        times = sorted(event.time for event in events[:256])
        total = 0.0
        gaps = 0
        previous = times[0]
        for time in times[1:]:
            if time > previous:
                total += time - previous
                gaps += 1
                previous = time
        if gaps == 0:
            return 1.0
        return max((total / gaps) * 3.0, 1e-9)

    def _set_cursor(self, time: float) -> None:
        slot = int(time / self.width)
        self.cursor = slot & self.mask
        self.top = (slot + 1) * self.width

    # ------------------------------------------------------------------
    def insert(self, event: ScheduledEvent) -> None:
        slot = int(event.time / self.width)
        insort(self.buckets[slot & self.mask], event)
        self.count += 1
        if event.time < self.top - self.width:
            # Earlier than the cursor's current window (cannot normally
            # happen for time >= now, but keeps the scan sound anyway).
            self._set_cursor(event.time)

    def pop_batch(self, out: Deque[ScheduledEvent]) -> Tuple[int, int]:
        """Move the earliest same-time run of live events into ``out``.

        Returns ``(live_appended, cancelled_dropped)``; ``(0, dropped)``
        means the calendar is empty of live events.
        """
        dropped = 0
        if self.count == 0:
            return 0, 0
        buckets = self.buckets
        scans = 0
        while True:
            bucket = buckets[self.cursor]
            while bucket and bucket[0].cancelled:
                bucket.pop(0)
                self.count -= 1
                dropped += 1
            if bucket and bucket[0].time < self.top:
                return self._take_run(bucket, out), dropped
            if self.count == 0:
                return 0, dropped
            self.cursor = (self.cursor + 1) & self.mask
            self.top += self.width
            scans += 1
            if scans > self.nbuckets:
                # One fruitless year: the next event is far away.  Find
                # it directly and note the sparse horizon.
                self.sparse_strikes += 1
                best: Optional[List[ScheduledEvent]] = None
                for candidate in buckets:
                    while candidate and candidate[0].cancelled:
                        candidate.pop(0)
                        self.count -= 1
                        dropped += 1
                    if candidate and (best is None or candidate[0] < best[0]):
                        best = candidate
                if best is None:
                    return 0, dropped
                self._set_cursor(best[0].time)
                return self._take_run(best, out), dropped

    def _take_run(
        self, bucket: List[ScheduledEvent], out: Deque[ScheduledEvent]
    ) -> int:
        """Slice the leading same-time run (all same-time events share a
        slot, so the run is contiguous at the bucket head)."""
        time = bucket[0].time
        run = 1
        while run < len(bucket) and bucket[run].time == time:
            run += 1
        taken = 0
        for event in bucket[:run]:
            if not event.cancelled:
                out.append(event)
                taken += 1
        del bucket[:run]
        self.count -= run
        return taken

    def peek(self) -> Tuple[Optional[ScheduledEvent], int]:
        """Earliest live event without removing it (direct search), plus
        the number of cancelled entries pruned along the way."""
        dropped = 0
        best: Optional[ScheduledEvent] = None
        for bucket in self.buckets:
            while bucket and bucket[0].cancelled:
                bucket.pop(0)
                self.count -= 1
                dropped += 1
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best, dropped

    def drain_all(self) -> List[ScheduledEvent]:
        events: List[ScheduledEvent] = []
        for bucket in self.buckets:
            events.extend(bucket)
            bucket.clear()
        self.count = 0
        return events


class EventQueue:
    """A priority queue of :class:`ScheduledEvent` with a read-only clock.

    ``backend`` selects the store: ``"auto"`` (default, promotes a heap
    to a calendar queue under load), or ``"heap"`` / ``"calendar"`` to
    force one — the pop order is identical in all three, which the
    differential tests in ``tests/test_sim.py`` fuzz.
    """

    def __init__(self, backend: Optional[str] = None) -> None:
        if backend is None:
            backend = DEFAULT_BACKEND
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self._policy = backend
        self._heap: List[ScheduledEvent] = []
        self._calendar: Optional[_CalendarQueue] = None
        self._mode = "calendar" if backend == "calendar" else "heap"
        if self._mode == "calendar":
            self._calendar = _CalendarQueue([], 0.0)
        self._banned = False  # sparse horizon detected; stay on the heap
        #: same-time run being drained by :meth:`pop_until` (already in
        #: final order); survives an ``until`` cut so the next run resumes.
        self._batch: Deque[ScheduledEvent] = deque()
        self._sequence = itertools.count()
        self._now = 0.0
        self._live = 0  # scheduled, not yet popped, not cancelled
        self._stale = 0  # cancelled but still physically stored
        self._epoch = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def backend(self) -> str:
        """The store currently in use (``"heap"`` or ``"calendar"``)."""
        return self._mode

    def physical_size(self) -> int:
        """Stored entries including cancelled ones (compaction tests)."""
        backing = len(self._heap) if self._mode == "heap" else self._calendar.count
        return backing + len(self._batch)

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Enqueue ``callback`` to fire at virtual ``time``.

        ``priority`` orders same-time events (lower first) before the
        scheduling-order tiebreak; the pipeline engine uses it to commit
        task completions before starting new work at the same instant.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = ScheduledEvent(time, priority, next(self._sequence), callback, label)
        event._queue = self
        event._epoch = self._epoch
        self._live += 1
        batch = self._batch
        if batch:
            last = batch[-1]
            if (time, priority) < (last.time, last.priority):
                # The new event sorts inside the buffered same-time run
                # (same time, lower priority — its sequence is larger, so
                # an equal (time, priority) always sorts after the run).
                # Flush the run back to the store; the next refill
                # re-merges in correct order.
                while batch:
                    self._insert(batch.popleft())
        self._insert(event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        return self.schedule(self._now + delay, callback, priority, label)

    def _insert(self, event: ScheduledEvent) -> None:
        if self._mode == "heap":
            heapq.heappush(self._heap, event)
            if (
                self._policy == "auto"
                and not self._banned
                and len(self._heap) >= _CALENDAR_ENTER
            ):
                self._switch_to_calendar()
        else:
            calendar = self._calendar
            calendar.insert(event)
            if calendar.count > 2 * calendar.nbuckets:
                self._rebuild_calendar()

    # ------------------------------------------------------------------
    def pop(self) -> Optional[ScheduledEvent]:
        """Advance the clock to, and return, the next live event."""
        return self.pop_until(None)

    def pop_until(self, until: Optional[float] = None) -> Optional[ScheduledEvent]:
        """Fused peek+pop: the next live event, or ``None`` when the
        queue is drained *or* the next event lies beyond ``until``.

        Same-time runs are lifted out of the store in one batch, so a
        burst of N simultaneous completions costs one store operation
        instead of N peek+pop pairs.
        """
        batch = self._batch
        while True:
            while batch:
                event = batch[0]
                if event.cancelled:
                    batch.popleft()
                    self._stale -= 1
                    continue
                if until is not None and event.time > until:
                    return None
                batch.popleft()
                self._now = event.time
                self._live -= 1
                event._queue = None
                return event
            if not self._refill_batch():
                return None

    def _refill_batch(self) -> bool:
        """Move the earliest same-time run from the store into the batch."""
        if (
            self._mode == "calendar"
            and self._policy == "auto"
            and self._live < _CALENDAR_EXIT
        ):
            self._switch_to_heap()
        if self._mode == "heap":
            heap = self._heap
            while heap:
                event = heapq.heappop(heap)
                if event.cancelled:
                    self._stale -= 1
                    continue
                batch = self._batch
                batch.append(event)
                time = event.time
                while heap and heap[0].time == time:
                    peer = heapq.heappop(heap)
                    if peer.cancelled:
                        self._stale -= 1
                    else:
                        batch.append(peer)
                return True
            return False
        calendar = self._calendar
        taken, dropped = calendar.pop_batch(self._batch)
        self._stale -= dropped
        if (
            self._policy == "auto"
            and calendar.sparse_strikes >= _SPARSE_STRIKES
        ):
            self._banned = True
            self._switch_to_heap()
        elif calendar.count < calendar.nbuckets // 4 and calendar.nbuckets > 8:
            self._rebuild_calendar()
        return taken > 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._live

    def clear(self) -> int:
        """Drop every pending event (a fail-stop crash: in-flight work
        vanishes, the clock stays where it is).  Returns the number of
        live events discarded.  O(1): outstanding handles are invalidated
        by bumping the queue epoch rather than by detaching each event."""
        dropped = self._live
        self._epoch += 1
        self._heap = []
        self._batch.clear()
        self._mode = "calendar" if self._policy == "calendar" else "heap"
        self._calendar = _CalendarQueue([], self._now) if self._mode == "calendar" else None
        self._live = 0
        self._stale = 0
        return dropped

    def peek_time(self) -> Optional[float]:
        batch = self._batch
        while batch and batch[0].cancelled:
            batch.popleft()
            self._stale -= 1
        if batch:
            return batch[0].time
        if self._mode == "heap":
            heap = self._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)
                self._stale -= 1
            return heap[0].time if heap else None
        event, dropped = self._calendar.peek()
        self._stale -= dropped
        return event.time if event is not None else None

    # ------------------------------------------------------------------
    # cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancel(self, event: ScheduledEvent) -> None:
        if event._epoch != self._epoch:
            return  # handle outlived a clear(); nothing is stored
        self._live -= 1
        self._stale += 1
        if self._stale >= _COMPACT_MIN and self._stale > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the backing store (triggered when
        they outnumber live events, e.g. a fault injector cancelling a
        whole pre-scheduled timetable)."""
        if self._batch:
            self._batch = deque(
                event for event in self._batch if not event.cancelled
            )
        if self._mode == "heap":
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
        else:
            self._rebuild_calendar()
        self._stale = 0

    # ------------------------------------------------------------------
    # backend transitions (deterministic: functions of stored events only)
    # ------------------------------------------------------------------
    def _switch_to_calendar(self) -> None:
        live = [event for event in self._heap if not event.cancelled]
        self._stale -= len(self._heap) - len(live)
        self._heap = []
        self._calendar = _CalendarQueue(live, self._now)
        self._mode = "calendar"

    def _switch_to_heap(self) -> None:
        stored = self._calendar.drain_all()
        live = [event for event in stored if not event.cancelled]
        self._stale -= len(stored) - len(live)
        self._calendar = None
        self._heap = live
        heapq.heapify(self._heap)
        self._mode = "heap"

    def _rebuild_calendar(self) -> None:
        stored = self._calendar.drain_all()
        live = [event for event in stored if not event.cancelled]
        self._stale -= len(stored) - len(live)
        self._calendar = _CalendarQueue(live, self._now)
