"""Event queue with a virtual clock and deterministic ordering.

Events at equal times pop in scheduling order (a monotonically increasing
sequence number breaks ties), so two runs of the same scenario interleave
identically — a precondition for the reproducibility experiments, where
the *simulation itself* must be deterministic before CSP vs BSP/ASP
differences mean anything.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["ScheduledEvent", "EventQueue"]


@dataclass(order=True)
class ScheduledEvent:
    """One pending event; ordering is (time, priority, sequence)."""

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`ScheduledEvent` with a read-only clock."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        """Enqueue ``callback`` to fire at virtual ``time``.

        ``priority`` orders same-time events (lower first) before the
        scheduling-order tiebreak; the pipeline engine uses it to commit
        task completions before starting new work at the same instant.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = ScheduledEvent(time, priority, next(self._sequence), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> ScheduledEvent:
        return self.schedule(self._now + delay, callback, priority, label)

    def pop(self) -> Optional[ScheduledEvent]:
        """Advance the clock to, and return, the next live event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            return event
        return None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def clear(self) -> int:
        """Drop every pending event (a fail-stop crash: in-flight work
        vanishes, the clock stays where it is).  Returns the number of
        live events discarded."""
        dropped = len(self)
        self._heap.clear()
        return dropped

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
