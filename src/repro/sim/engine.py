"""The discrete-event simulation loop.

A thin, generic driver: pop events in (time, priority, sequence) order and
fire their callbacks until the queue drains or a step/time budget trips.
All domain logic lives in the callbacks the pipeline engine installs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.sim.clock import EventQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExecutionTrace

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Owns the event queue and runs it to quiescence.

    When ``trace`` is given, the engine emits one ``sim_quiescent``
    observability event each time the queue drains, carrying the
    cumulative event count — the run-global "the schedule is complete"
    marker the trace exporter pins at the end of the timeline.
    """

    def __init__(
        self,
        max_events: int = 10_000_000,
        trace: Optional["ExecutionTrace"] = None,
    ) -> None:
        self.queue = EventQueue()
        self.max_events = max_events
        self.events_processed = 0
        self.trace = trace

    @property
    def now(self) -> float:
        return self.queue.now

    def schedule(self, time: float, callback, priority: int = 0, label: str = ""):
        return self.queue.schedule(time, callback, priority, label)

    def schedule_after(self, delay: float, callback, priority: int = 0, label: str = ""):
        return self.queue.schedule_after(delay, callback, priority, label)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` is reached).

        Returns the final virtual time.  The loop is a single fused
        ``pop_until`` per event — no separate peek — and the event budget
        is checked *before* firing, so the raised error names the first
        over-budget event and the trace never contains its effects.
        """
        queue = self.queue
        pop_until = queue.pop_until
        max_events = self.max_events
        while True:
            event = pop_until(until)
            if event is None:
                if len(queue) == 0:
                    if self.trace is not None:
                        self.trace.record_event(
                            "sim_quiescent",
                            self.now,
                            events_processed=self.events_processed,
                        )
                return self.now
            if self.events_processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events}); likely a "
                    f"scheduling livelock (first over-budget event "
                    f"{event.label!r})"
                )
            event.callback()
            self.events_processed += 1
