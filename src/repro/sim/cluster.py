"""Cluster topology: GPUs, copy engines and links, built from a spec.

Defaults mirror the paper's testbed: 11 GB GPUs, PCIe 3.0 ×16 at
15 760 MB/s for host↔device copies, inter-stage traffic capped at the
measured 867 MB/s, 0.17 ms ping.

Device construction lives in :func:`build_devices` so ownership is a
choice, not a side effect: an engine that runs alone builds (and owns)
its devices through ``Cluster(spec)``, while a multi-tenant service has
:class:`repro.service.manager.ClusterManager` build them against leased
physical slots and hand the engine an already-populated ``Cluster``
(``Cluster(spec, devices=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.devices import CopyEngine, GpuDevice, Link

__all__ = ["ClusterSpec", "Cluster", "ClusterDevices", "build_devices"]

_MB = 1_000_000


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a pipeline cluster.

    By default every inter-stage link runs at the measured end-to-end
    bandwidth (``uniform_network=True``) — the regime the paper reports
    ("the maximized network bandwidth ... was 867 MB/s").  Setting
    ``uniform_network=False`` models the testbed's physical topology:
    ``gpus_per_host`` GPUs share a host, adjacent stages on the same host
    talk over PCIe peer-to-peer (fast), host boundaries cross 40 GbE.
    """

    num_gpus: int = 8
    gpu_memory_bytes: int = 11 * 1_000_000_000
    #: framework + CUDA context + workspace overhead per GPU
    reserved_bytes: int = 900 * _MB
    pcie_bandwidth_bytes_per_ms: float = 15_760 * _MB / 1_000.0
    network_bandwidth_bytes_per_ms: float = 867 * _MB / 1_000.0
    network_latency_ms: float = 0.17
    uniform_network: bool = True
    gpus_per_host: int = 4
    intra_host_bandwidth_bytes_per_ms: float = 10_000 * _MB / 1_000.0
    intra_host_latency_ms: float = 0.01
    #: per-GPU compute slowdown factors (1.0 = nominal).  Models mixed
    #: hardware or thermal throttling; used to show CSP reproducibility
    #: is timing-independent ("potentially on a different cluster").
    gpu_speed_factors: "tuple[float, ...] | None" = None

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError(f"need at least 1 GPU, got {self.num_gpus}")
        if self.reserved_bytes >= self.gpu_memory_bytes:
            raise ConfigError("reserved bytes exceed GPU memory")
        if self.gpus_per_host < 1:
            raise ConfigError("gpus_per_host must be positive")
        if self.gpu_speed_factors is not None:
            if len(self.gpu_speed_factors) != self.num_gpus:
                raise ConfigError(
                    f"gpu_speed_factors needs {self.num_gpus} entries, "
                    f"got {len(self.gpu_speed_factors)}"
                )
            if any(factor <= 0 for factor in self.gpu_speed_factors):
                raise ConfigError("gpu speed factors must be positive")

    def speed_factor(self, gpu_id: int) -> float:
        if self.gpu_speed_factors is None:
            return 1.0
        return self.gpu_speed_factors[gpu_id]

    def host_of(self, gpu_id: int) -> int:
        return gpu_id // self.gpus_per_host

    def link_parameters(self, src: int, dst: int):
        """(bandwidth, latency) for a stage-to-stage link."""
        if self.uniform_network or self.host_of(src) == self.host_of(dst):
            if self.uniform_network:
                return self.network_bandwidth_bytes_per_ms, self.network_latency_ms
            return (
                self.intra_host_bandwidth_bytes_per_ms,
                self.intra_host_latency_ms,
            )
        return self.network_bandwidth_bytes_per_ms, self.network_latency_ms

    @property
    def num_hosts(self) -> int:
        return (self.num_gpus + self.gpus_per_host - 1) // self.gpus_per_host


#: (gpus, copy_engines, forward_links, backward_links) — one run's
#: freshly-constructed occupancy models.
ClusterDevices = Tuple[
    List[GpuDevice], List[CopyEngine], List[Link], List[Link]
]


def build_devices(
    spec: ClusterSpec, slots: Optional[Tuple[int, ...]] = None
) -> ClusterDevices:
    """Construct the device set one simulation run occupies.

    ``slots`` brands each GPU with its physical identity in a shared
    fleet (stage ``i`` runs on physical slot ``slots[i]``); without it,
    stage index and physical identity coincide.  Devices are always
    fresh — occupancy state (``busy_until``, ``next_free``) never leaks
    between runs even when the same physical slots are re-leased.
    """
    if slots is not None and len(slots) != spec.num_gpus:
        raise ConfigError(
            f"slot set names {len(slots)} GPUs, spec expects {spec.num_gpus}"
        )
    gpus = [
        GpuDevice(
            gpu_id=i,
            memory_capacity=spec.gpu_memory_bytes,
            reserved_bytes=spec.reserved_bytes,
            slot=None if slots is None else slots[i],
        )
        for i in range(spec.num_gpus)
    ]
    copy_engines = [
        CopyEngine(i, spec.pcie_bandwidth_bytes_per_ms)
        for i in range(spec.num_gpus)
    ]
    # links[i] carries stage i -> i+1 (forward) traffic; a paired
    # reverse link carries gradients.  Full duplex, so they do not
    # contend with each other.  Bandwidth/latency per link depend on
    # whether the hop crosses a host boundary (see ClusterSpec).
    forward_links = [
        Link(i, i + 1, *spec.link_parameters(i, i + 1))
        for i in range(spec.num_gpus - 1)
    ]
    backward_links = [
        Link(i + 1, i, *spec.link_parameters(i + 1, i))
        for i in range(spec.num_gpus - 1)
    ]
    return gpus, copy_engines, forward_links, backward_links


class Cluster:
    """Instantiated devices for one simulation run.

    ``devices`` lets an external owner (the service plane's
    ``ClusterManager``) supply pre-built devices; by default the cluster
    builds — and therefore owns — its own.
    """

    def __init__(
        self, spec: ClusterSpec, devices: Optional[ClusterDevices] = None
    ) -> None:
        self.spec = spec
        if devices is None:
            devices = build_devices(spec)
        self.gpus, self.copy_engines, self.forward_links, self.backward_links = (
            devices
        )

    @property
    def num_stages(self) -> int:
        return self.spec.num_gpus

    def usable_memory_per_gpu(self) -> int:
        return self.spec.gpu_memory_bytes - self.spec.reserved_bytes

    def forward_link(self, from_stage: int) -> Link:
        return self.forward_links[from_stage]

    def backward_link(self, from_stage: int) -> Link:
        return self.backward_links[from_stage - 1]
