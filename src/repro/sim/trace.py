"""Execution tracing: the raw record every evaluation metric derives from.

The trace stores two layers of data for one pipeline run:

* **busy intervals** (:class:`BusyInterval`) — per-GPU occupancy spans
  tagged with the causing task, the minimal record the paper's headline
  metrics need;
* **typed events** (:class:`TraceEvent`) — the structured observability
  stream (task dispatches, CSP waits with their blocking edge, prefetch
  issue/land, evictions, NIC transfers, counter samples) consumed by
  :mod:`repro.obs` for Perfetto export and bubble attribution.  The full
  event schema is documented in ``docs/TRACING.md`` and machine-checked
  by :mod:`repro.obs.events`.

The paper's metrics map onto the interval layer directly:

* **bubble ratio** — idle fraction of each GPU inside the pipeline's
  active window (Table 2's "Bub." column);
* **GPU ALU** — busy fraction × batch-dependent ALU efficiency, summed
  over GPUs (Table 2's "GPU ALU", Figure 7);
* **cache hit rate** — resident-at-execution checks (Table 2's last
  column);
* **throughput** — samples per second from subnet completions.

All times are **virtual milliseconds** from the simulation clock; all
byte quantities are plain bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["BusyInterval", "TraceEvent", "ExecutionTrace"]


class BusyInterval(NamedTuple):
    """One span of GPU occupancy.

    ``kind`` is ``"fwd"``/``"bwd"`` for compute and ``"stall"`` for any
    span where the GPU sits idle waiting on a parameter copy, an operator
    migration or an OOM retry.  Compute intervals are what Table 2's
    bubble/ALU columns count as *busy*; stalls count as idle.
    Units: ``start``/``end`` in virtual ms.

    A :class:`NamedTuple` rather than a frozen dataclass: traces append
    tens of thousands of these per run, and tuple construction is the
    cheapest immutable record CPython offers.
    """

    gpu_id: int
    start: float
    end: float
    kind: str  # "fwd" | "bwd" | "stall"
    subnet_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceEvent(NamedTuple):
    """One structured observability event.

    ``kind`` names the event type (the registry in
    :data:`repro.obs.events.EVENT_SCHEMAS` enumerates every kind, its
    emitter and its fields).  ``stage`` is the pipeline stage / GPU id
    the event belongs to, or ``-1`` for run-global events; ``subnet_id``
    is ``-1`` when the event is not tied to one subnet.  ``attrs`` holds
    the kind-specific payload as a tuple of ``(key, value)`` pairs so
    the event stays hashable and its serialisation deterministic.
    ``time`` is in virtual ms.  A :class:`NamedTuple` for the same
    reason as :class:`BusyInterval` — event emission is the hottest
    allocation site in the whole simulator.
    """

    kind: str
    time: float
    stage: int = -1
    subnet_id: int = -1
    attrs: Tuple[Tuple[str, object], ...] = ()

    def attr(self, key: str, default: object = None) -> object:
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    @property
    def attrs_dict(self) -> Dict[str, object]:
        return dict(self.attrs)


@dataclass
class ExecutionTrace:
    """Accumulates intervals, typed events and counters for one run."""

    num_gpus: int
    intervals: List[BusyInterval] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    stall_time_total: float = 0.0
    subnet_completion_times: Dict[int, float] = field(default_factory=dict)
    start_time: float = 0.0
    end_time: float = 0.0
    #: synchronous observers called with each event as it is recorded
    #: (in emission order, on the virtual clock) — the hook live health
    #: monitors attach to.  Excluded from equality: two traces with the
    #: same events are the same trace regardless of who watched them.
    listeners: List = field(default_factory=list, repr=False, compare=False)

    # ------------------------------------------------------------------
    def record_interval(
        self, gpu_id: int, start: float, end: float, kind: str, subnet_id: int
    ) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        self.intervals.append(BusyInterval(gpu_id, start, end, kind, subnet_id))
        if kind == "stall":
            self.stall_time_total += end - start
        self.end_time = max(self.end_time, end)

    def record_event(
        self,
        kind: str,
        time: float,
        stage: int = -1,
        subnet_id: int = -1,
        **attrs: object,
    ) -> None:
        """Append one typed event (see ``docs/TRACING.md`` for kinds)."""
        event = TraceEvent(kind, time, stage, subnet_id, tuple(attrs.items()))
        self.events.append(event)
        if self.listeners:
            for listener in self.listeners:
                listener(event)

    def append_event(self, event: TraceEvent) -> None:
        """Append a pre-built event — the hot-path twin of
        :meth:`record_event`.

        The kwargs form pays a dict build plus ``items()`` per call; the
        cache layer alone emits ~70% of a run's events, so its emitters
        construct the :class:`TraceEvent` (attrs as a literal tuple, same
        key order as the kwargs form) and hand it over whole.  Both paths
        produce byte-identical event streams.
        """
        self.events.append(event)
        if self.listeners:
            for listener in self.listeners:
                listener(event)

    def record_cache_access(self, hit: bool, count: int = 1) -> None:
        if hit:
            self.cache_hits += count
        else:
            self.cache_misses += count

    def record_subnet_complete(self, subnet_id: int, time: float) -> None:
        self.subnet_completion_times[subnet_id] = time
        self.end_time = max(self.end_time, time)
        self.record_event("subnet_complete", time, subnet_id=subnet_id)

    # ------------------------------------------------------------------
    # event queries
    # ------------------------------------------------------------------
    def events_of(self, *kinds: str) -> Iterator[TraceEvent]:
        """Events of the given kinds, in emission order."""
        wanted = set(kinds)
        return (event for event in self.events if event.kind in wanted)

    def intervals_by_gpu(
        self, kinds: Tuple[str, ...] = ("fwd", "bwd", "stall")
    ) -> Dict[int, List[BusyInterval]]:
        """Per-GPU interval lists of the given kinds, sorted by
        ``(start, end)`` — the layout :mod:`repro.obs.critical_path`
        walks.  Every GPU in ``range(num_gpus)`` gets an entry (possibly
        empty) so downstream code never special-cases silent stages."""
        per_gpu: Dict[int, List[BusyInterval]] = {
            gpu: [] for gpu in range(self.num_gpus)
        }
        for interval in self.intervals:
            if interval.kind in kinds and interval.gpu_id in per_gpu:
                per_gpu[interval.gpu_id].append(interval)
        for intervals in per_gpu.values():
            intervals.sort(key=lambda i: (i.start, i.end))
        return per_gpu

    def event_kinds(self) -> List[str]:
        """Sorted distinct event kinds present in this trace."""
        return sorted({event.kind for event in self.events})

    def event_counts(self) -> Dict[str, int]:
        """``{kind: occurrences}``, sorted by kind (deterministic)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Active-window length in virtual ms (``end_time - start_time``);
        the denominator of every Table 2 utilisation column."""
        return self.end_time - self.start_time

    def busy_time(self, gpu_id: int, compute_only: bool = True) -> float:
        """Total occupied ms on ``gpu_id``.

        ``compute_only=True`` counts fwd/bwd spans only — the paper's
        notion of *busy* for bubble/ALU; ``False`` adds stall spans.
        """
        kinds = ("fwd", "bwd") if compute_only else ("fwd", "bwd", "stall")
        return sum(
            interval.duration
            for interval in self.intervals
            if interval.gpu_id == gpu_id and interval.kind in kinds
        )

    def bubble_ratio(self) -> float:
        """Mean idle fraction across GPUs over the active window.

        Table 2's "Bub." column (and the y-axis of Figure 7's bubble
        panel).  Dimensionless in [0, 1].  The per-cause decomposition of
        the same quantity lives in
        :func:`repro.obs.summary.bubble_attribution`, which sums back to
        this value within 1e-9.
        """
        if self.makespan <= 0:
            return 0.0
        idle_fractions = []
        for gpu_id in range(self.num_gpus):
            busy = self.busy_time(gpu_id, compute_only=True)
            idle_fractions.append(1.0 - min(1.0, busy / self.makespan))
        return sum(idle_fractions) / len(idle_fractions)

    def total_alu_utilization(self, alu_efficiency: float = 1.0) -> float:
        """Sum over GPUs of (busy fraction × ALU efficiency).

        Table 2's "GPU ALU" column and Figure 7's utilisation panel.
        Matches the paper's normalisation: "7.8×" means the summed
        utilisation equals 7.8 fully-busy GPUs.  Dimensionless.
        """
        if self.makespan <= 0:
            return 0.0
        total = 0.0
        for gpu_id in range(self.num_gpus):
            busy = self.busy_time(gpu_id, compute_only=True)
            total += min(1.0, busy / self.makespan) * alu_efficiency
        return total

    def cache_hit_rate(self) -> Optional[float]:
        """Fraction of layer activations found resident (Table 2's last
        column, "when a layer in a choice block is activated, the layer
        already resides in GPU memory").  None when the system does not
        cache (full-context baselines)."""
        accesses = self.cache_hits + self.cache_misses
        if accesses == 0:
            return None
        return self.cache_hits / accesses

    def subnets_completed(self) -> int:
        """Subnets whose final backward committed (stream progress)."""
        return len(self.subnet_completion_times)

    def throughput_samples_per_sec(self, batch: int) -> float:
        """Training throughput in data samples per (virtual) second —
        the quantity Figure 5/6 normalise and Figure 7 scales."""
        if self.makespan <= 0:
            return 0.0
        return self.subnets_completed() * batch / (self.makespan / 1_000.0)

    def mean_exec_ms(self) -> float:
        """Average busy (bubble-eliminated) execution time per subnet.

        Table 2's "Exec." column: total compute time across GPUs divided
        by subnets completed and by the stage count — i.e. the per-subnet
        critical-path time had there been no bubbles.  Virtual ms.
        """
        done = self.subnets_completed()
        if done == 0:
            return 0.0
        compute = sum(
            interval.duration
            for interval in self.intervals
            if interval.kind in ("fwd", "bwd")
        )
        return compute / done

    def gantt_rows(self) -> List[Tuple[int, float, float, str, int]]:
        """Plain-tuple rendering of intervals (for Figure 1 style output)."""
        return [
            (i.gpu_id, i.start, i.end, i.kind, i.subnet_id)
            for i in sorted(self.intervals, key=lambda i: (i.gpu_id, i.start))
        ]
