"""Execution tracing: the raw record every evaluation metric derives from.

The trace stores per-GPU busy intervals tagged with the task that caused
them, plus cache-hit/miss and stall events from the context manager.  The
paper's metrics map onto it directly:

* **bubble ratio** — idle fraction of each GPU inside the pipeline's
  active window (Table 2's "Bub." column);
* **GPU ALU** — busy fraction × batch-dependent ALU efficiency, summed
  over GPUs (Table 2's "GPU ALU", Figure 7);
* **cache hit rate** — resident-at-execution checks (Table 2's last
  column);
* **throughput** — samples per second from subnet completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["BusyInterval", "ExecutionTrace"]


@dataclass(frozen=True)
class BusyInterval:
    """One span of GPU occupancy."""

    gpu_id: int
    start: float
    end: float
    kind: str  # "fwd" | "bwd" | "stall"
    subnet_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Accumulates intervals and context-manager events for one run."""

    num_gpus: int
    intervals: List[BusyInterval] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    stall_time_total: float = 0.0
    subnet_completion_times: Dict[int, float] = field(default_factory=dict)
    start_time: float = 0.0
    end_time: float = 0.0

    # ------------------------------------------------------------------
    def record_interval(
        self, gpu_id: int, start: float, end: float, kind: str, subnet_id: int
    ) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        self.intervals.append(BusyInterval(gpu_id, start, end, kind, subnet_id))
        if kind == "stall":
            self.stall_time_total += end - start
        self.end_time = max(self.end_time, end)

    def record_cache_access(self, hit: bool, count: int = 1) -> None:
        if hit:
            self.cache_hits += count
        else:
            self.cache_misses += count

    def record_subnet_complete(self, subnet_id: int, time: float) -> None:
        self.subnet_completion_times[subnet_id] = time
        self.end_time = max(self.end_time, time)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return self.end_time - self.start_time

    def busy_time(self, gpu_id: int, compute_only: bool = True) -> float:
        kinds = ("fwd", "bwd") if compute_only else ("fwd", "bwd", "stall")
        return sum(
            interval.duration
            for interval in self.intervals
            if interval.gpu_id == gpu_id and interval.kind in kinds
        )

    def bubble_ratio(self) -> float:
        """Mean idle fraction across GPUs over the active window."""
        if self.makespan <= 0:
            return 0.0
        idle_fractions = []
        for gpu_id in range(self.num_gpus):
            busy = self.busy_time(gpu_id, compute_only=True)
            idle_fractions.append(1.0 - min(1.0, busy / self.makespan))
        return sum(idle_fractions) / len(idle_fractions)

    def total_alu_utilization(self, alu_efficiency: float = 1.0) -> float:
        """Sum over GPUs of (busy fraction × ALU efficiency).

        Matches the paper's normalisation: "7.8×" means the summed
        utilisation equals 7.8 fully-busy GPUs.
        """
        if self.makespan <= 0:
            return 0.0
        total = 0.0
        for gpu_id in range(self.num_gpus):
            busy = self.busy_time(gpu_id, compute_only=True)
            total += min(1.0, busy / self.makespan) * alu_efficiency
        return total

    def cache_hit_rate(self) -> Optional[float]:
        accesses = self.cache_hits + self.cache_misses
        if accesses == 0:
            return None
        return self.cache_hits / accesses

    def subnets_completed(self) -> int:
        return len(self.subnet_completion_times)

    def throughput_samples_per_sec(self, batch: int) -> float:
        """Training throughput in data samples per (virtual) second."""
        if self.makespan <= 0:
            return 0.0
        return self.subnets_completed() * batch / (self.makespan / 1_000.0)

    def mean_exec_ms(self) -> float:
        """Average busy (bubble-eliminated) execution time per subnet.

        Table 2's "Exec." column: total compute time across GPUs divided
        by subnets completed and by the stage count — i.e. the per-subnet
        critical-path time had there been no bubbles.
        """
        done = self.subnets_completed()
        if done == 0:
            return 0.0
        compute = sum(
            interval.duration
            for interval in self.intervals
            if interval.kind in ("fwd", "bwd")
        )
        return compute / done

    def gantt_rows(self) -> List[Tuple[int, float, float, str, int]]:
        """Plain-tuple rendering of intervals (for Figure 1 style output)."""
        return [
            (i.gpu_id, i.start, i.end, i.kind, i.subnet_id)
            for i in sorted(self.intervals, key=lambda i: (i.gpu_id, i.start))
        ]
