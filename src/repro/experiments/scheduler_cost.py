"""Scheduler cost analysis — backing the paper's §3.2 complexity claim.

The paper argues Algorithm 2 costs O(|L_q|·(|L_f| + m²)) per call, kept
small (<0.01 s) by the finished-list elimination scheme, and therefore
negligible against second-scale subnet executions.  This experiment
measures the real per-call wall time of our scheduler at growing queue
sizes, with and without the elimination scheme's effect (approximated by
letting the stream run long enough for the frontier to matter).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler
from repro.seeding import SeedSequenceTree
from repro.supernet.sampler import SposSampler
from repro.supernet.search_space import get_search_space

__all__ = ["SchedulerCostPoint", "run", "format_text"]


@dataclass
class SchedulerCostPoint:
    queue_size: int
    scenario: str  # "average" (random SPOS queue) | "worst" (all blocked)
    mean_call_us: float
    scans_per_call: float


def _measure(
    subnets, queue_size: int, scenario: str, stages: int, calls: int,
    num_blocks: int,
) -> SchedulerCostPoint:
    tracker = DependencyTracker()
    for subnet in subnets:
        tracker.register(subnet)
    queue = [subnet.subnet_id for subnet in subnets[1:]]
    lookup = {subnet.subnet_id: subnet for subnet in subnets}
    slice_size = num_blocks // stages

    def stage_layers(subnet_id: int):
        return lookup[subnet_id].layers_in_range(0, slice_size)

    scheduler = CspScheduler()
    started = time.perf_counter()
    for _ in range(calls):
        scheduler.schedule(queue, stage_layers, tracker)
    elapsed = time.perf_counter() - started
    return SchedulerCostPoint(
        queue_size=queue_size,
        scenario=scenario,
        mean_call_us=elapsed / calls * 1e6,
        scans_per_call=scheduler.scans / scheduler.calls,
    )


def run(
    space_name: str = "NLP.c1",
    queue_sizes: Optional[List[int]] = None,
    calls_per_point: int = 300,
    stages: int = 8,
    seed: int = 2022,
) -> List[SchedulerCostPoint]:
    from repro.supernet.subnet import Subnet

    space = get_search_space(space_name)
    sampler = SposSampler(space, SeedSequenceTree(seed))
    points: List[SchedulerCostPoint] = []
    for queue_size in queue_sizes or [5, 10, 20, 30, 60]:
        # Average case: a random SPOS queue — the head is usually clear.
        points.append(
            _measure(
                sampler.sample_many(queue_size + 1),
                queue_size,
                "average",
                stages,
                calls_per_point,
                space.num_blocks,
            )
        )
        # Worst case: every queued subnet blocked by subnet 0, so every
        # call scans the full queue and finds nothing.
        identical = [
            Subnet(i, tuple([0] * space.num_blocks))
            for i in range(queue_size + 1)
        ]
        points.append(
            _measure(
                identical, queue_size, "worst", stages, calls_per_point,
                space.num_blocks,
            )
        )
    return points


def format_text(points: List[SchedulerCostPoint]) -> str:
    lines = [
        "Scheduler cost (Algorithm 2) vs queue size — paper claims "
        "<0.01 s per call",
        "",
        f"{'|L_q|':>6s} {'scenario':>9s} {'mean call (µs)':>15s} "
        f"{'scans/call':>11s}",
    ]
    for point in points:
        lines.append(
            f"{point.queue_size:>6d} {point.scenario:>9s} "
            f"{point.mean_call_us:>15.1f} {point.scans_per_call:>11.1f}"
        )
    worst_ms = max(point.mean_call_us for point in points) / 1000.0
    lines.append("")
    lines.append(
        f"worst observed: {worst_ms:.3f} ms/call "
        f"({'within' if worst_ms < 10 else 'OUTSIDE'} the paper's 10 ms bound)"
    )
    return "\n".join(lines)
