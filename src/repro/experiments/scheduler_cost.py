"""Scheduler cost analysis — backing the paper's §3.2 complexity claim.

The paper argues Algorithm 2 costs O(|L_q|·(|L_f| + m²)) per call, kept
small (<0.01 s) by the finished-list elimination scheme, and therefore
negligible against second-scale subnet executions.  This experiment
measures the real per-call wall time of our scheduler at growing queue
sizes, with and without the elimination scheme's effect (approximated by
letting the stream run long enough for the frontier to matter).

:func:`run_scaling` extends the claim to *stream length*: it races the
incremental readiness index against the rescanning reference
implementation over growing subnet streams (straggler-pinned frontier,
the worst case for scanning), asserts the two are decision-identical,
and packages the result as the ``BENCH_scheduler.json`` payload the
``make bench-scheduler`` target and the CI regression gate consume.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.dependency import DependencyTracker
from repro.core.scheduler import CspScheduler
from repro.profiling import profile_scheduler_stream
from repro.seeding import SeedSequenceTree
from repro.supernet.sampler import SposSampler
from repro.supernet.search_space import get_search_space

__all__ = [
    "SchedulerCostPoint",
    "run",
    "format_text",
    "SchedulerScalingPoint",
    "run_scaling",
    "EngineThroughputRow",
    "run_engine_bench",
    "format_scaling_text",
    "write_bench_json",
    "check_regression",
]


@dataclass
class SchedulerCostPoint:
    queue_size: int
    scenario: str  # "average" (random SPOS queue) | "worst" (all blocked)
    mean_call_us: float
    scans_per_call: float


def _measure(
    subnets, queue_size: int, scenario: str, stages: int, calls: int,
    num_blocks: int,
) -> SchedulerCostPoint:
    tracker = DependencyTracker()
    for subnet in subnets:
        tracker.register(subnet)
    queue = [subnet.subnet_id for subnet in subnets[1:]]
    lookup = {subnet.subnet_id: subnet for subnet in subnets}
    slice_size = num_blocks // stages

    def stage_layers(subnet_id: int):
        return lookup[subnet_id].layers_in_range(0, slice_size)

    scheduler = CspScheduler()
    started = time.perf_counter()
    for _ in range(calls):
        scheduler.schedule(queue, stage_layers, tracker)
    elapsed = time.perf_counter() - started
    return SchedulerCostPoint(
        queue_size=queue_size,
        scenario=scenario,
        mean_call_us=elapsed / calls * 1e6,
        scans_per_call=scheduler.scans / scheduler.calls,
    )


def run(
    space_name: str = "NLP.c1",
    queue_sizes: Optional[List[int]] = None,
    calls_per_point: int = 300,
    stages: int = 8,
    seed: int = 2022,
) -> List[SchedulerCostPoint]:
    from repro.supernet.subnet import Subnet

    space = get_search_space(space_name)
    sampler = SposSampler(space, SeedSequenceTree(seed))
    points: List[SchedulerCostPoint] = []
    for queue_size in queue_sizes or [5, 10, 20, 30, 60]:
        # Average case: a random SPOS queue — the head is usually clear.
        points.append(
            _measure(
                sampler.sample_many(queue_size + 1),
                queue_size,
                "average",
                stages,
                calls_per_point,
                space.num_blocks,
            )
        )
        # Worst case: every queued subnet blocked by subnet 0, so every
        # call scans the full queue and finds nothing.
        identical = [
            Subnet(i, tuple([0] * space.num_blocks))
            for i in range(queue_size + 1)
        ]
        points.append(
            _measure(
                identical, queue_size, "worst", stages, calls_per_point,
                space.num_blocks,
            )
        )
    return points


def format_text(points: List[SchedulerCostPoint]) -> str:
    lines = [
        "Scheduler cost (Algorithm 2) vs queue size — paper claims "
        "<0.01 s per call",
        "",
        f"{'|L_q|':>6s} {'scenario':>9s} {'mean call (µs)':>15s} "
        f"{'scans/call':>11s}",
    ]
    for point in points:
        lines.append(
            f"{point.queue_size:>6d} {point.scenario:>9s} "
            f"{point.mean_call_us:>15.1f} {point.scans_per_call:>11.1f}"
        )
    worst_ms = max(point.mean_call_us for point in points) / 1000.0
    lines.append("")
    lines.append(
        f"worst observed: {worst_ms:.3f} ms/call "
        f"({'within' if worst_ms < 10 else 'OUTSIDE'} the paper's 10 ms bound)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# stream-length scaling: readiness index vs scan reference
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerScalingPoint:
    """One (mode, stream length) cost sample."""

    mode: str
    stream_len: int
    calls: int
    mean_call_us: float
    scans_per_call: float
    ready_pops: int


#: repeats per point; the minimum mean is reported to suppress timer noise
_SCALING_REPEATS = 3


def run_scaling(
    stream_lens: Sequence[int] = (100, 300, 1000),
    modes: Sequence[str] = ("index", "scan"),
    seed: int = 2022,
    repeats: int = _SCALING_REPEATS,
) -> Dict:
    """Race scheduler modes over growing streams; build the bench payload.

    Every mode must produce the identical decision sequence at every
    stream length (``decision_identical``) — the readiness index is an
    optimisation, never a semantic change.  ``index_flatness`` is the
    max/min ratio of the index mode's mean per-call time across stream
    lengths: the paper's flat-cost claim holds when it stays under 2.
    """
    points: List[SchedulerScalingPoint] = []
    decision_identical = True
    for stream_len in stream_lens:
        reference = None
        per_mode_best: Dict[str, SchedulerScalingPoint] = {}
        for mode in modes:
            best = None
            for _ in range(max(1, repeats)):
                profile = profile_scheduler_stream(
                    mode, stream_len, seed=seed
                )
                if reference is None:
                    reference = profile.decisions
                elif profile.decisions != reference:
                    decision_identical = False
                if best is None or profile.mean_call_us < best.mean_call_us:
                    best = profile
            per_mode_best[mode] = SchedulerScalingPoint(
                mode=best.mode,
                stream_len=stream_len,
                calls=best.calls,
                mean_call_us=best.mean_call_us,
                scans_per_call=best.scans_per_call,
                ready_pops=best.ready_pops,
            )
        points.extend(per_mode_best.values())

    def _means(mode: str) -> List[float]:
        return [p.mean_call_us for p in points if p.mode == mode]

    index_means = _means("index")
    scan_means = _means("scan")
    payload: Dict = {
        "benchmark": "scheduler_scaling",
        "seed": seed,
        "stream_lens": list(stream_lens),
        "decision_identical": decision_identical,
        "points": [asdict(p) for p in points],
    }
    if index_means:
        payload["index_flatness"] = max(index_means) / max(
            min(index_means), 1e-9
        )
    if scan_means:
        payload["scan_growth"] = max(scan_means) / max(min(scan_means), 1e-9)
    return payload


# ----------------------------------------------------------------------
# end-to-end events/sec: the simulator core's throughput
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineThroughputRow:
    """One events/sec sample of the simulator core.

    ``workload="pipeline"`` is a full NASPipe engine run (scheduling,
    cache, observability — the real per-event cost); ``"event_loop"`` is
    a hold-model microbenchmark of :meth:`SimulationEngine.run` alone
    (``loop_pending`` events always in flight, each firing schedules the
    next) — the queue-dominated regime the calendar backend targets.
    ``makespan_ms`` doubles as a cross-machine determinism fingerprint:
    it must match the committed baseline *bitwise*.
    """

    workload: str
    num_gpus: int
    events: int
    events_per_sec: float
    makespan_ms: Optional[float] = None
    trace_events: Optional[int] = None


def _bench_pipeline(
    space_name: str, subnets: int, num_gpus: int, batch: int, seed: int,
    repeats: int,
) -> EngineThroughputRow:
    from repro.baselines import naspipe
    from repro.engines.pipeline import PipelineEngine
    from repro.sim.cluster import ClusterSpec
    from repro.supernet.sampler import SubnetStream
    from repro.supernet.supernet import Supernet

    space = get_search_space(space_name)
    best_rate = 0.0
    events = 0
    trace_events = 0
    makespan = None
    for _ in range(max(1, repeats)):
        supernet = Supernet(space)
        stream = SubnetStream.sample(space, SeedSequenceTree(seed), subnets)
        engine = PipelineEngine(
            supernet, stream, naspipe(), ClusterSpec(num_gpus=num_gpus),
            batch=batch,
        )
        started = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - started
        if makespan is not None and result.makespan_ms != makespan:
            raise AssertionError(
                f"non-deterministic makespan across repeats: "
                f"{result.makespan_ms!r} != {makespan!r}"
            )
        makespan = result.makespan_ms
        events = engine.sim.events_processed
        trace_events = len(engine.trace.events)
        best_rate = max(best_rate, events / elapsed)
    return EngineThroughputRow(
        workload="pipeline",
        num_gpus=num_gpus,
        events=events,
        events_per_sec=best_rate,
        makespan_ms=makespan,
        trace_events=trace_events,
    )


def _bench_event_loop(
    loop_pending: int, loop_events: int, seed: int, repeats: int
) -> EngineThroughputRow:
    from random import Random

    from repro.sim.engine import SimulationEngine

    best_rate = 0.0
    processed = 0
    for _ in range(max(1, repeats)):
        rng = Random(seed)
        delays = [rng.random() * 10.0 + 0.01 for _ in range(4096)]
        engine = SimulationEngine(max_events=loop_events + loop_pending + 1)
        queue = engine.queue
        scheduled = 0

        def fire() -> None:
            nonlocal scheduled
            if scheduled < loop_events:
                scheduled += 1
                queue.schedule(queue.now + delays[scheduled & 4095], fire)

        for index in range(loop_pending):
            scheduled += 1
            queue.schedule(delays[index & 4095], fire)
        started = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - started
        processed = engine.events_processed
        best_rate = max(best_rate, processed / elapsed)
    return EngineThroughputRow(
        workload="event_loop",
        num_gpus=0,
        events=processed,
        events_per_sec=best_rate,
    )


def run_engine_bench(
    space_name: str = "NLP.c2",
    subnets: int = 96,
    num_gpus: int = 8,
    batch: int = 32,
    seed: int = 2022,
    repeats: int = 3,
    loop_pending: int = 8192,
    loop_events: int = 200_000,
) -> Dict:
    """The ``"engine"`` section of ``BENCH_scheduler.json``.

    Best-of-``repeats`` events/sec for the full pipeline engine and the
    bare event loop; the pipeline row's ``makespan_ms`` is asserted
    identical across repeats and gated bitwise against the committed
    baseline by :func:`check_regression`.
    """
    rows = [
        _bench_pipeline(space_name, subnets, num_gpus, batch, seed, repeats),
        _bench_event_loop(loop_pending, loop_events, seed, repeats),
    ]
    return {
        "space": space_name,
        "subnets": subnets,
        "num_gpus": num_gpus,
        "batch": batch,
        "seed": seed,
        "loop_pending": loop_pending,
        "loop_events": loop_events,
        "rows": [asdict(row) for row in rows],
    }


def format_scaling_text(payload: Dict) -> str:
    lines = [
        "Scheduler scaling — readiness index vs scan reference "
        "(straggler-pinned frontier)",
        "",
        f"{'mode':>6s} {'stream':>7s} {'calls':>6s} {'mean call (µs)':>15s} "
        f"{'scans/call':>11s}",
    ]
    for point in payload["points"]:
        lines.append(
            f"{point['mode']:>6s} {point['stream_len']:>7d} "
            f"{point['calls']:>6d} {point['mean_call_us']:>15.2f} "
            f"{point['scans_per_call']:>11.1f}"
        )
    lines.append("")
    lines.append(
        "decisions identical across modes: "
        + ("YES" if payload["decision_identical"] else "NO (BUG)")
    )
    if "index_flatness" in payload:
        flat = payload["index_flatness"]
        lines.append(
            f"index per-call flatness (max/min over stream lengths): "
            f"{flat:.2f}x ({'flat' if flat < 2.0 else 'NOT FLAT'})"
        )
    if "scan_growth" in payload:
        lines.append(
            f"scan per-call growth over the same range: "
            f"{payload['scan_growth']:.2f}x"
        )
    engine = payload.get("engine")
    if engine:
        lines.append("")
        lines.append(
            f"Simulator throughput — {engine['space']}, "
            f"{engine['subnets']} subnets, batch {engine['batch']}"
        )
        lines.append(
            f"{'workload':>10s} {'gpus':>5s} {'events':>8s} "
            f"{'events/sec':>11s} {'makespan_ms':>14s}"
        )
        for row in engine["rows"]:
            makespan = (
                f"{row['makespan_ms']:.3f}"
                if row.get("makespan_ms") is not None
                else "-"
            )
            lines.append(
                f"{row['workload']:>10s} {row['num_gpus']:>5d} "
                f"{row['events']:>8d} {row['events_per_sec']:>11.0f} "
                f"{makespan:>14s}"
            )
    return "\n".join(lines)


def write_bench_json(payload: Dict, path) -> Path:
    """Write the scaling payload (BENCH_scheduler.json)."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def check_regression(
    payload: Dict, baseline_path, factor: float = 2.0
) -> List[str]:
    """Compare a payload against a committed baseline; list failures.

    A point regresses when its mean per-call time exceeds ``factor`` ×
    the baseline's for the same (mode, stream length).  Decision
    divergence and a non-flat index are always failures.
    """
    failures: List[str] = []
    if not payload.get("decision_identical", False):
        failures.append("decision sequences diverged between modes")
    if payload.get("index_flatness", 1.0) >= factor:
        failures.append(
            f"index per-call cost not flat: {payload['index_flatness']:.2f}x "
            f"across stream lengths (limit {factor:.1f}x)"
        )
    baseline = json.loads(Path(baseline_path).read_text())
    baseline_points = {
        (p["mode"], p["stream_len"]): p for p in baseline.get("points", ())
    }
    for point in payload.get("points", ()):
        key = (point["mode"], point["stream_len"])
        base = baseline_points.get(key)
        if base is None:
            continue
        if point["mean_call_us"] > factor * base["mean_call_us"]:
            failures.append(
                f"{key[0]}@{key[1]}: {point['mean_call_us']:.2f}µs/call vs "
                f"baseline {base['mean_call_us']:.2f}µs (>{factor:.1f}x)"
            )
    engine = payload.get("engine")
    base_engine = baseline.get("engine")
    if engine and base_engine:
        identity_keys = ("space", "subnets", "num_gpus", "batch", "seed")
        same_workload = all(
            engine.get(key) == base_engine.get(key) for key in identity_keys
        )
        base_rows = {
            (r["workload"], r["num_gpus"]): r
            for r in base_engine.get("rows", ())
        }
        for row in engine.get("rows", ()):
            base = base_rows.get((row["workload"], row["num_gpus"]))
            if base is None:
                continue
            if row["events_per_sec"] * factor < base["events_per_sec"]:
                failures.append(
                    f"{row['workload']}: {row['events_per_sec']:.0f} "
                    f"events/sec vs baseline "
                    f"{base['events_per_sec']:.0f} (<1/{factor:.1f}x)"
                )
            if (
                same_workload
                and row.get("makespan_ms") is not None
                and base.get("makespan_ms") is not None
                and row["makespan_ms"] != base["makespan_ms"]
            ):
                failures.append(
                    f"{row['workload']}: makespan {row['makespan_ms']!r} != "
                    f"baseline {base['makespan_ms']!r} — determinism "
                    f"violation, not a perf delta"
                )
    return failures
