"""Figure 4: end-to-end training convergence, score vs wall-clock time.

Each system trains the same seeded subnet stream with its own supported
batch size; the functional plane records per-subnet losses, and the
simulator supplies virtual wall-clock completion times.  Plotting the
(smoothed) quality proxy against virtual time reproduces the paper's
claim: NASPipe converges to a higher score in the same wall-clock budget
because it sustains larger batches/throughput while preserving the
causal update order (ASP's inconsistent updates also cost final quality,
emergent from the math, not assumed).

Functional training on the full-width spaces is numpy-bound, so the
default scales block count/width down — the relative ordering of the
curves is what the figure is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines import ALL_SYSTEMS, system_by_name
from repro.errors import GpuOutOfMemoryError
from repro.nas.evaluator import proxy_bleu
from repro.nas.trainer import SupernetTrainer
from repro.supernet.search_space import get_search_space

__all__ = ["ConvergenceCurve", "run", "format_text"]


@dataclass
class ConvergenceCurve:
    space: str
    system: str
    #: (virtual seconds, smoothed loss, proxy score) checkpoints
    points: List[Tuple[float, float, float]]
    final_score: Optional[float]
    oom: bool = False

    def score_at(self, budget_seconds: float) -> Optional[float]:
        """Quality reached within a virtual wall-clock budget — the
        figure's actual comparison (curves share the x-axis)."""
        best = None
        for t, _loss, score in self.points:
            if t <= budget_seconds:
                best = score
        return best


def _smooth(losses: List[Tuple[float, float]], window: int = 8):
    smoothed = []
    for index in range(len(losses)):
        lo = max(0, index - window + 1)
        segment = [loss for _t, loss in losses[lo : index + 1]]
        smoothed.append((losses[index][0], sum(segment) / len(segment)))
    return smoothed


def run(
    spaces: Optional[List[str]] = None,
    steps: int = 96,
    seed: int = 2022,
    num_blocks: int = 16,
    choices_per_block: int = 12,
    checkpoint_every: int = 8,
) -> List[ConvergenceCurve]:
    curves: List[ConvergenceCurve] = []
    for space_name in spaces or ["NLP.c1", "NLP.c2", "NLP.c3", "CV.c1", "CV.c2", "CV.c3"]:
        # Scaled spaces keep the *ratio* structure of Table 1 but shrink
        # the candidate count so each layer trains repeatedly within the
        # functional budget — otherwise no system's curve moves.
        space = get_search_space(space_name).scaled(
            num_blocks=num_blocks,
            choices_per_block=min(
                choices_per_block,
                get_search_space(space_name).choices_per_block,
            ),
            functional_width=16,
        )
        for system in ALL_SYSTEMS:
            trainer = SupernetTrainer(
                space,
                seed=seed,
                stream_kind="generational",
                # Repeated-update regime: gentler than the wide-space
                # default so momentum-SGD converges rather than orbits.
                learning_rate=0.05,
                momentum=0.5,
            )
            try:
                training = trainer.train(system_by_name(system), steps=steps)
            except GpuOutOfMemoryError:
                curves.append(
                    ConvergenceCurve(space_name, system, [], None, oom=True)
                )
                continue
            completions = training.result.trace.subnet_completion_times
            series = sorted(
                (completions[sid], training.result.losses[sid])
                for sid in training.result.losses
            )
            smoothed = _smooth(series)
            points = [
                (t / 1000.0, loss, proxy_bleu(loss))
                for index, (t, loss) in enumerate(smoothed)
                if index % checkpoint_every == 0 or index == len(smoothed) - 1
            ]
            final = proxy_bleu(smoothed[-1][1]) if smoothed else None
            curves.append(ConvergenceCurve(space_name, system, points, final))
    return curves


def format_text(curves: List[ConvergenceCurve]) -> str:
    lines = ["Figure 4 — convergence (final smoothed quality proxy and the "
             "virtual time to finish the same stream)", ""]
    by_space: Dict[str, List[ConvergenceCurve]] = {}
    for curve in curves:
        by_space.setdefault(curve.space, []).append(curve)
    for space, space_curves in by_space.items():
        lines.append(space)
        finished = [
            curve.points[-1][0] for curve in space_curves if curve.points
        ]
        budget = min(finished) if finished else 0.0
        for curve in space_curves:
            if curve.oom:
                lines.append(f"  {curve.system:>10s}: OOM")
                continue
            end_time = curve.points[-1][0] if curve.points else float("nan")
            at_budget = curve.score_at(budget)
            budget_cell = (
                f"score@{budget:.0f}s {at_budget:6.2f}"
                if at_budget is not None
                else f"score@{budget:.0f}s   n/a"
            )
            lines.append(
                f"  {curve.system:>10s}: {budget_cell}   final "
                f"{curve.final_score:6.2f} after {end_time:7.1f}s"
            )
        lines.append("")
    return "\n".join(lines)
