"""Table 2: resource consumption and micro events per (space, system).

Columns mirror the paper: parameter footprint ("P.S."), supported batch,
normalized GPU memory and ALU use, CPU (pinned) memory, per-subnet
execution time (bubble-eliminated), bubble ratio, cache hit rate.
The quality score column is produced by :mod:`repro.experiments.table3`'s
functional runs (scores belong with the reproducibility experiment here,
since timing-only runs do not train weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines import ALL_SYSTEMS, system_by_name
from repro.experiments.common import ExperimentScale, run_system
from repro.memory_model import memory_breakdown
from repro.sim.cluster import ClusterSpec
from repro.supernet.search_space import get_search_space, list_search_spaces
from repro.supernet.supernet import Supernet

__all__ = ["ResourceRow", "run", "format_text"]

_GB = 1_000_000_000


@dataclass
class ResourceRow:
    space: str
    system: str
    param_count: int  # resident parameter footprint (subnet-multiple or supernet)
    score: Optional[float]  # proxy quality from a scaled functional run
    batch: Optional[int]
    gpu_mem_x: Optional[float]  # total GPU memory, normalized to one GPU's 11 GB
    gpu_alu_x: Optional[float]
    cpu_mem_gb: float  # pinned CPU storage for swapped systems
    exec_ms: Optional[float]
    bubble: Optional[float]
    cache_hit: Optional[float]
    oom: bool


def _param_footprint(supernet: Supernet, system: str) -> int:
    config = system_by_name(system)
    if config.context == "full":
        return supernet.total_param_count()
    return int(config.cache_subnets * supernet.expected_subnet_param_count())


def _cpu_pinned_gb(supernet: Supernet, system: str) -> float:
    config = system_by_name(system)
    if config.context == "full":
        return 0.0
    return supernet.total_param_bytes() / _GB


def _proxy_score(space_name: str, system: str, scale: ExperimentScale) -> float:
    """The Table 2 "Score" column: quality of a converged supernet.

    Full-width functional training is numpy-bound, so the score comes
    from a scaled variant of the space (same protocol as Table 3) — it
    measures the sync pattern's quality effect, not absolute BLEU.
    """
    from repro.baselines import system_by_name as by_name
    from repro.nas.trainer import SupernetTrainer

    space = get_search_space(space_name).scaled(
        num_blocks=16, functional_width=16
    )
    trainer = SupernetTrainer(space, seed=scale.seed, num_gpus=scale.num_gpus)
    training = trainer.train(by_name(system), steps=32, batch=32)
    outcome = trainer.search(training, evaluations=12, population_size=6)
    return outcome.best_score


def run(
    scale: Optional[ExperimentScale] = None,
    spaces: Optional[List[str]] = None,
    with_scores: bool = False,
) -> List[ResourceRow]:
    scale = scale or ExperimentScale.small()
    cluster = ClusterSpec(num_gpus=scale.num_gpus)
    rows: List[ResourceRow] = []
    for space_name in spaces or list_search_spaces():
        supernet = Supernet(get_search_space(space_name))
        for system in ALL_SYSTEMS:
            result = run_system(space_name, system, scale)
            config = system_by_name(system)
            score = (
                _proxy_score(space_name, system, scale)
                if with_scores and result is not None
                else None
            )
            if result is None:
                rows.append(
                    ResourceRow(
                        space=space_name,
                        system=system,
                        param_count=_param_footprint(supernet, system),
                        score=None,
                        batch=None,
                        gpu_mem_x=None,
                        gpu_alu_x=None,
                        cpu_mem_gb=_cpu_pinned_gb(supernet, system),
                        exec_ms=None,
                        bubble=None,
                        cache_hit=None,
                        oom=True,
                    )
                )
                continue
            breakdown = memory_breakdown(supernet, config, cluster, result.batch)
            per_gpu_used = min(breakdown.total, breakdown.usable_bytes)
            gpu_mem_x = (
                (per_gpu_used + cluster.reserved_bytes)
                * cluster.num_gpus
                / cluster.gpu_memory_bytes
            )
            rows.append(
                ResourceRow(
                    space=space_name,
                    system=system,
                    param_count=_param_footprint(supernet, system),
                    score=score,
                    batch=result.batch,
                    gpu_mem_x=gpu_mem_x,
                    gpu_alu_x=result.total_alu,
                    cpu_mem_gb=_cpu_pinned_gb(supernet, system),
                    exec_ms=result.mean_exec_ms,
                    bubble=result.bubble_ratio,
                    cache_hit=result.cache_hit_rate,
                    oom=False,
                )
            )
    return rows


def _fmt_params(count: int) -> str:
    if count >= 1_000_000_000:
        return f"{count / 1e9:.1f}B"
    return f"{count / 1e6:.0f}M"


def format_text(rows: List[ResourceRow]) -> str:
    lines = [
        "Table 2 — resource consumption and micro events",
        "",
        f"{'space':>7s} {'system':>10s} {'Para.':>7s} {'Score':>6s} "
        f"{'Batch':>6s} {'GPU Mem':>8s} {'GPU ALU':>8s} {'CPU Mem':>8s} "
        f"{'Exec(s)':>8s} {'Bub.':>5s} {'Cache Hit':>10s}",
    ]
    for row in rows:
        score = f"{row.score:.2f}" if row.score is not None else "-"
        if row.oom:
            lines.append(
                f"{row.space:>7s} {row.system:>10s} "
                f"{_fmt_params(row.param_count):>7s} {score:>6s} {'OOM':>6s}"
            )
            continue
        hit = f"{row.cache_hit * 100:.1f}%" if row.cache_hit is not None else "N/A"
        lines.append(
            f"{row.space:>7s} {row.system:>10s} {_fmt_params(row.param_count):>7s} "
            f"{score:>6s} {row.batch:>6d} {row.gpu_mem_x:>7.1f}x "
            f"{row.gpu_alu_x:>7.1f}x {row.cpu_mem_gb:>7.1f}G "
            f"{row.exec_ms / 1000:>8.2f} {row.bubble:>5.2f} {hit:>10s}"
        )
    return "\n".join(lines)
