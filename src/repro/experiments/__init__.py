"""Experiment runners: one module per paper table/figure.

Every runner exposes ``run(scale) -> rows`` plus a ``format_text(rows)``
renderer, and is driven both by the benchmark suite (``benchmarks/``) and
the CLI (``python -m repro <experiment>``).  ``ExperimentScale`` shrinks
stream lengths / GPU counts for CI while keeping the full-paper settings
one flag away.
"""

from repro.experiments.common import ExperimentScale, run_system

__all__ = ["ExperimentScale", "run_system"]
