"""Figure 5: normalized training throughput, four systems × seven spaces.

Also covers the §5.1 headline numbers (NASPipe vs GPipe 1.1×-7.8×, vs
PipeDream 0.87×-6.5×, vs VPipe 0.77×-1.5×) and the artifact's throughput
ordering check T(NLP.c0) > T(NLP.c1) > T(NLP.c2) > T(NLP.c3) — larger
spaces mean fewer causal dependencies, hence more parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines import ALL_SYSTEMS
from repro.experiments.common import ExperimentScale, run_system
from repro.metrics.throughput import normalize_throughput, subnets_per_hour
from repro.supernet.search_space import list_search_spaces

__all__ = ["ThroughputCell", "run", "format_text"]


@dataclass
class ThroughputCell:
    space: str
    system: str
    throughput: Optional[float]  # samples/sec; None = OOM
    batch: Optional[int]
    bubble: Optional[float]
    subnets_per_hour: Optional[float]


def run(
    scale: Optional[ExperimentScale] = None,
    spaces: Optional[List[str]] = None,
    systems: Optional[List[str]] = None,
) -> List[ThroughputCell]:
    scale = scale or ExperimentScale.small()
    cells: List[ThroughputCell] = []
    for space in spaces or list_search_spaces():
        for system in systems or ALL_SYSTEMS:
            result = run_system(space, system, scale)
            if result is None:
                cells.append(ThroughputCell(space, system, None, None, None, None))
            else:
                cells.append(
                    ThroughputCell(
                        space,
                        system,
                        result.throughput_samples_per_sec,
                        result.batch,
                        result.bubble_ratio,
                        subnets_per_hour(
                            result.subnets_completed, result.makespan_ms
                        ),
                    )
                )
    return cells


def by_space(cells: List[ThroughputCell]) -> Dict[str, Dict[str, Optional[float]]]:
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for cell in cells:
        table.setdefault(cell.space, {})[cell.system] = cell.throughput
    return table


def format_text(cells: List[ThroughputCell]) -> str:
    lines = [
        "Figure 5 — normalized throughput (NASPipe = 1.0; 'OOM' = failed "
        "to fit, as GPipe/PipeDream on NLP.c0 in the paper)",
        "",
        f"{'space':>7s} " + "".join(f"{s:>12s}" for s in ALL_SYSTEMS)
        + f"{'NASPipe subnets/h':>20s}",
    ]
    table = by_space(cells)
    per_hour = {
        (c.space, c.system): c.subnets_per_hour for c in cells
    }
    for space, row in table.items():
        normalized = normalize_throughput(row, "NASPipe")
        rendered = "".join(
            f"{normalized[s]:>12.2f}" if normalized.get(s) is not None else f"{'OOM':>12s}"
            for s in ALL_SYSTEMS
        )
        nph = per_hour.get((space, "NASPipe"))
        lines.append(f"{space:>7s} {rendered}{nph:>20.0f}")
    return "\n".join(lines)
