"""Shared plumbing for experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines import system_by_name
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine, PipelineResult
from repro.errors import GpuOutOfMemoryError
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

__all__ = ["ExperimentScale", "run_system", "make_stream"]


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run an experiment.

    ``paper()`` matches the paper's defaults (8 GPUs, long streams);
    ``small()`` is the CI/benchmark size.  Performance experiments use
    evolution-shaped ("generational") streams, matching the paper's
    default search strategy; reproducibility experiments use raw SPOS.
    """

    subnets: int = 250
    num_gpus: int = 8
    seed: int = 2022
    stream_kind: str = "generational"

    @classmethod
    def small(cls) -> "ExperimentScale":
        return cls(subnets=96, num_gpus=8)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(subnets=600, num_gpus=8)


def make_stream(
    space_name: str,
    scale: ExperimentScale,
    salt: str = "",
    space=None,
) -> SubnetStream:
    """Seeded subnet stream for one (space, scale) cell; pass ``space``
    to sample from an already-resolved (e.g. scaled) search space."""
    if space is None:
        space = get_search_space(space_name)
    seeds = SeedSequenceTree(scale.seed).child(salt) if salt else SeedSequenceTree(
        scale.seed
    )
    if scale.stream_kind == "generational":
        return SubnetStream.sample_generational(space, seeds, scale.subnets)
    return SubnetStream.sample(space, seeds, scale.subnets)


def run_system(
    space_name: str,
    system_name: str,
    scale: ExperimentScale,
    num_gpus: Optional[int] = None,
    with_functional: bool = False,
    batch: Optional[int] = None,
    space_overrides: Optional[dict] = None,
    **system_overrides,
) -> Optional[PipelineResult]:
    """Run one (system, space) cell; returns None when the system OOMs
    (the paper's "failed to run" cells for GPipe/PipeDream on NLP.c0).
    ``space_overrides`` scales the search space before sampling (the
    same knob the faults/chaos configs expose)."""
    space = get_search_space(space_name)
    if space_overrides:
        space = space.scaled(**space_overrides)
    supernet = Supernet(space)
    stream = make_stream(
        space_name, scale, salt=f"{space_name}/{system_name}", space=space
    )
    config = system_by_name(system_name, **system_overrides)
    plane = None
    if with_functional:
        plane = FunctionalPlane(supernet, SeedSequenceTree(scale.seed))
    try:
        engine = PipelineEngine(
            supernet,
            stream,
            config,
            ClusterSpec(num_gpus=num_gpus or scale.num_gpus),
            batch=batch,
            functional=plane,
        )
    except GpuOutOfMemoryError:
        return None
    return engine.run()
