"""Table 3: reproducibility — supernet loss and search accuracy across
cluster sizes for CSP, BSP and ASP.

For each search space we train the same seeded subnet stream with the
same hyperparameters on 4, 8 and 16 simulated GPUs under each
synchronisation pattern, then run the (deterministic) evolutionary search
on the resulting supernet.  CSP produces identical losses, identical
searched architectures and identical scores on every cluster size; BSP
and ASP do not.

Functional training on the full Table 1 spaces is feasible but slow in
numpy, so the default uses block/width-scaled variants of each space —
the synchronisation semantics, which are what reproducibility depends
on, are unaffected by the scaling (the test suite covers both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines import gpipe, naspipe, pipedream
from repro.config import SystemConfig
from repro.metrics.reproducibility import ReproducibilityReport
from repro.nas.trainer import SupernetTrainer
from repro.supernet.search_space import get_search_space, list_search_spaces

__all__ = ["run", "format_text", "SYNC_SYSTEMS"]

SYNC_SYSTEMS: List[Tuple[str, SystemConfig]] = [
    ("CSP", naspipe()),
    ("BSP", gpipe()),
    ("ASP", pipedream()),
]

_GPU_COUNTS = (4, 8, 16)


@dataclass
class Table3Scale:
    steps: int = 48
    num_blocks: int = 16
    functional_width: int = 16
    search_evaluations: int = 16
    population: int = 8


def _scaled_space(name: str, scale: Table3Scale):
    return get_search_space(name).scaled(
        num_blocks=scale.num_blocks,
        functional_width=scale.functional_width,
    )


def run(
    spaces: Optional[List[str]] = None,
    scale: Optional[Table3Scale] = None,
    seed: int = 2022,
) -> Dict[str, ReproducibilityReport]:
    scale = scale or Table3Scale()
    reports: Dict[str, ReproducibilityReport] = {}
    for space_name in spaces or [s for s in list_search_spaces() if s != "NLP.c0"]:
        report = ReproducibilityReport(space=space_name)
        space = _scaled_space(space_name, scale)
        for sync_name, config in SYNC_SYSTEMS:
            for gpus in _GPU_COUNTS:
                trainer = SupernetTrainer(space, seed=seed, num_gpus=gpus)
                # Timing batch fixed across cluster sizes, matching the
                # paper's "same batch size and hyperparameters" protocol.
                training = trainer.train(config, steps=scale.steps, batch=32)
                outcome = trainer.search(
                    training,
                    evaluations=scale.search_evaluations,
                    population_size=scale.population,
                )
                assert training.digest is not None
                report.record(
                    system=sync_name,
                    gpus=gpus,
                    loss=training.mean_tail_loss() or float("nan"),
                    score=outcome.best_score,
                    digest=training.digest,
                )
        reports[space_name] = report
    return reports


def format_text(reports: Dict[str, ReproducibilityReport]) -> str:
    lines = [
        "Table 3 — reproducibility across cluster sizes "
        "(supernet loss | search accuracy at 4/8/16 GPUs)",
        "",
    ]
    for space, report in reports.items():
        lines.append(space)
        for sync_name, _config in SYNC_SYSTEMS:
            lines.append("  " + report.row(sync_name))
        lines.append("")
    return "\n".join(lines)
