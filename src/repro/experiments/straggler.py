"""Straggler mitigation benchmark (graceful degradation, `repro.ft`).

One GPU in the cluster runs slow (a thermally-throttled or
oversubscribed device — the classic persistent straggler).  Without
mitigation every pipeline round is paced by the slow stage.  With the
degradation manager armed, the health monitor's speed-ratio EWMA
classifies the stage as a straggler and the manager gives it a cost
weight: the next subnet's balanced partition shifts layer boundaries
away from the slow device, and the off-home layers materialise through
the mirror registry exactly as for any replicated assignment.

The benchmark reports makespan with mitigation off vs on, the recorded
mitigation actions, the mirror replica counts the rebalance produced —
and that both runs finish with the *same digest*: under CSP the
partition shape changes timing only (Definition 1/2), so chasing
stragglers is free of any reproducibility cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines import system_by_name
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

__all__ = ["StragglerRow", "run", "format_text"]


@dataclass
class StragglerRow:
    """One (slowdown, mitigation) cell of the benchmark."""

    slow_stage: int
    slowdown: float
    mitigated: bool
    makespan_ms: float
    digest: Optional[str]
    mitigation_actions: List[Dict[str, object]] = field(default_factory=list)
    #: off-home replica count per stage after the run (mirror registry)
    replica_counts: Dict[int, int] = field(default_factory=dict)


def _run_once(
    space,
    system,
    *,
    num_gpus: int,
    steps: int,
    seed: int,
    speed_factors: Tuple[float, ...],
    mitigated: bool,
) -> Tuple[object, Optional[Dict[int, int]]]:
    supernet = Supernet(space)
    seeds = SeedSequenceTree(seed)
    plane = FunctionalPlane(supernet, seeds, functional_batch=8)
    stream = SubnetStream.sample(space, seeds, steps)
    engine = PipelineEngine(
        supernet,
        stream,
        system,
        ClusterSpec(num_gpus=num_gpus, gpu_speed_factors=speed_factors),
        functional=plane,
        degradation=True if mitigated else None,
    )
    result = engine.run()
    replicas = (
        engine.mirror_registry.stage_replica_counts()
        if engine.mirror_registry is not None
        else None
    )
    return result, replicas


def run(
    seed: int = 2022,
    *,
    space_name: str = "NLP.c3",
    num_gpus: int = 4,
    steps: int = 48,
    slow_stage: int = 1,
    slowdowns: Tuple[float, ...] = (1.8, 2.5),
) -> List[StragglerRow]:
    # 16 blocks over 4 stages: enough cut granularity for the weighted
    # partition to shift meaningful load off the slow stage (at 8 blocks
    # the one-block quantum over/under-shoots and the gain washes out)
    space = get_search_space(space_name).scaled(
        num_blocks=16, functional_width=16
    )
    system = system_by_name("NASPipe")
    rows: List[StragglerRow] = []
    for slowdown in slowdowns:
        speeds = tuple(
            slowdown if stage == slow_stage else 1.0
            for stage in range(num_gpus)
        )
        for mitigated in (False, True):
            result, replicas = _run_once(
                space,
                system,
                num_gpus=num_gpus,
                steps=steps,
                seed=seed,
                speed_factors=speeds,
                mitigated=mitigated,
            )
            rows.append(
                StragglerRow(
                    slow_stage=slow_stage,
                    slowdown=slowdown,
                    mitigated=mitigated,
                    makespan_ms=result.makespan_ms,
                    digest=result.digest,
                    mitigation_actions=list(result.mitigation_actions),
                    replica_counts=dict(replicas or {}),
                )
            )
    return rows


def format_text(rows: List[StragglerRow]) -> str:
    lines = [
        "Straggler mitigation — one slow GPU, rebalance via weighted "
        "partition (NASPipe, 4 GPUs)",
        "",
        "  slowdown  mitigation  makespan_ms  speedup  actions  digest",
    ]
    by_slowdown: Dict[float, Dict[bool, StragglerRow]] = {}
    for row in rows:
        by_slowdown.setdefault(row.slowdown, {})[row.mitigated] = row
    for slowdown, pair in sorted(by_slowdown.items()):
        off, on = pair.get(False), pair.get(True)
        for row in (off, on):
            if row is None:
                continue
            speedup = (
                f"{off.makespan_ms / row.makespan_ms:7.3f}x"
                if off is not None and row.makespan_ms
                else "      --"
            )
            digests_match = (
                off is not None
                and on is not None
                and off.digest == on.digest
            )
            lines.append(
                f"  {slowdown:8.2f}  {'on ' if row.mitigated else 'off':>10s}"
                f"  {row.makespan_ms:11.1f}  {speedup}  "
                f"{len(row.mitigation_actions):7d}  "
                f"{'match' if digests_match else row.digest[:12]}"
            )
        if on is not None and on.replica_counts:
            lines.append(
                f"            mirror replicas by stage: "
                f"{on.replica_counts}"
            )
    mitigated_better = all(
        pair[True].makespan_ms <= pair[False].makespan_ms
        for pair in by_slowdown.values()
        if False in pair and True in pair
    )
    digests_ok = all(
        pair[True].digest == pair[False].digest
        for pair in by_slowdown.values()
        if False in pair and True in pair
    )
    lines.append("")
    lines.append(
        f"  mitigation lowers makespan: {'yes' if mitigated_better else 'NO'}"
        f"; digests invariant under mitigation: "
        f"{'yes' if digests_ok else 'NO'}"
    )
    return "\n".join(lines)
