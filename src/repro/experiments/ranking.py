"""Candidate-ranking stability — the paper's §2.1 analysis motivation.

GreedyNAS-style workflows "repeatedly inspect the quality-ranking
information of subnets" after re-running an identified trial.  That only
works if the ranking is stable across re-runs on whatever cluster is
available.  This experiment trains the same stream under CSP/BSP/ASP on
two cluster sizes, scores a fixed panel of candidate architectures
against each trained supernet, and reports Kendall's τ between the two
rankings:

* CSP: τ = 1.0 exactly (identical weights ⇒ identical scores ⇒ identical
  ranking);
* BSP/ASP: τ < 1 — the ranking the analyst would study shuffles with the
  cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from scipy import stats

from repro.baselines import gpipe, naspipe, pipedream
from repro.config import SystemConfig
from repro.nas.evaluator import SubnetEvaluator
from repro.nas.trainer import SupernetTrainer
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import get_search_space
from repro.supernet.subnet import Subnet

__all__ = ["RankingRow", "run", "format_text"]


@dataclass
class RankingRow:
    system: str
    kendall_tau: float
    identical_scores: bool


def _candidate_panel(space, count: int, seed: int) -> List[Subnet]:
    rng = SeedSequenceTree(seed).fresh_generator("ranking/panel")
    return [
        Subnet(
            index,
            tuple(
                int(c)
                for c in rng.integers(0, space.choices_per_block, space.num_blocks)
            ),
        )
        for index in range(count)
    ]


def _scores_after_training(
    space, config: SystemConfig, gpus: int, panel: List[Subnet],
    steps: int, seed: int,
) -> List[float]:
    trainer = SupernetTrainer(space, seed=seed, num_gpus=gpus)
    training = trainer.train(config, steps=steps, batch=32)
    evaluator = SubnetEvaluator(training.plane)
    return [evaluator.score(candidate).score for candidate in panel]


def run(
    space_name: str = "NLP.c2",
    panel_size: int = 16,
    steps: int = 40,
    gpu_pair: Tuple[int, int] = (4, 8),
    seed: int = 2022,
    num_blocks: int = 16,
) -> List[RankingRow]:
    space = get_search_space(space_name).scaled(
        num_blocks=num_blocks, functional_width=16
    )
    panel = _candidate_panel(space, panel_size, seed)
    rows: List[RankingRow] = []
    for name, config in (
        ("CSP (NASPipe)", naspipe()),
        ("BSP (GPipe)", gpipe()),
        ("ASP (PipeDream)", pipedream()),
    ):
        scores_a = _scores_after_training(
            space, config, gpu_pair[0], panel, steps, seed
        )
        scores_b = _scores_after_training(
            space, config, gpu_pair[1], panel, steps, seed
        )
        tau, _p = stats.kendalltau(scores_a, scores_b)
        rows.append(
            RankingRow(
                system=name,
                kendall_tau=float(tau),
                identical_scores=scores_a == scores_b,
            )
        )
    return rows


def format_text(rows: List[RankingRow]) -> str:
    lines = [
        "Candidate-ranking stability across cluster sizes "
        "(Kendall's tau between 4- and 8-GPU rankings)",
        "",
        f"{'system':>16s} {'tau':>7s} {'scores bitwise equal':>22s}",
    ]
    for row in rows:
        lines.append(
            f"{row.system:>16s} {row.kendall_tau:>7.3f} "
            f"{str(row.identical_scores):>22s}"
        )
    return "\n".join(lines)
