"""Figure 6: ablation study — NASPipe vs NASPipe w/o scheduler /
predictor / mirroring, normalized throughput across spaces (§5.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines import ABLATIONS
from repro.experiments.common import ExperimentScale, run_system
from repro.metrics.throughput import normalize_throughput, subnets_per_hour
from repro.supernet.search_space import list_search_spaces

__all__ = ["AblationCell", "run", "format_text"]


@dataclass
class AblationCell:
    space: str
    system: str
    throughput: Optional[float]
    bubble: Optional[float]
    batch: Optional[int]
    subnets_per_hour: Optional[float]


def run(
    scale: Optional[ExperimentScale] = None,
    spaces: Optional[List[str]] = None,
) -> List[AblationCell]:
    scale = scale or ExperimentScale.small()
    cells: List[AblationCell] = []
    for space in spaces or list_search_spaces():
        for system in ABLATIONS:
            result = run_system(space, system, scale)
            if result is None:
                cells.append(AblationCell(space, system, None, None, None, None))
            else:
                cells.append(
                    AblationCell(
                        space,
                        system,
                        result.throughput_samples_per_sec,
                        result.bubble_ratio,
                        result.batch,
                        subnets_per_hour(
                            result.subnets_completed, result.makespan_ms
                        ),
                    )
                )
    return cells


def format_text(cells: List[AblationCell]) -> str:
    lines = [
        "Figure 6 — ablations (normalized throughput, NASPipe = 1.0)",
        "",
        f"{'space':>7s} " + "".join(f"{s.replace('NASPipe ', ''):>16s}" for s in ABLATIONS),
    ]
    table: Dict[str, Dict[str, Optional[float]]] = {}
    for cell in cells:
        table.setdefault(cell.space, {})[cell.system] = cell.throughput
    for space, row in table.items():
        normalized = normalize_throughput(row, "NASPipe")
        rendered = "".join(
            f"{normalized[s]:>16.2f}" if normalized.get(s) is not None else f"{'OOM':>16s}"
            for s in ABLATIONS
        )
        lines.append(f"{space:>7s} {rendered}")
    return "\n".join(lines)
