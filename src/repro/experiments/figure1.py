"""Figure 1: ASP vs BSP vs CSP on a toy dependent subnet stream.

Reproduces the paper's motivating figure: a short ordered list of subnets
with causal dependencies, executed under the three synchronisation
patterns on a small pipeline.  For each policy we report

* an ASCII Gantt chart of per-GPU task intervals, and
* the number of **violated causal dependencies** — parameter READs that
  observed a shared layer before its earlier writer's WRITE landed,
  counted from the functional plane's access log.

CSP shows zero violations at a bubble rate between BSP's and ASP's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines import gpipe, naspipe, pipedream
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine, PipelineResult
from repro.nn.parameter_store import AccessKind, ParameterStore
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = ["ToyRun", "run", "format_text", "count_violations"]

_STAGES = 2
_SPACE = "NLP.c3"
_TOY_BLOCKS = 8


@dataclass
class ToyRun:
    policy: str
    result: PipelineResult
    violations: int
    gantt: str


def _toy_stream() -> Tuple[Supernet, SubnetStream]:
    """Six subnets over an 8-block space with deliberate layer sharing:
    subnets 0/2/4 share choices, as do 1/3/5 — the figure's dependency
    chains."""
    space = get_search_space(_SPACE).scaled(
        name="toy", num_blocks=_TOY_BLOCKS, functional_width=16
    )
    supernet = Supernet(space)
    even = tuple([1] * _TOY_BLOCKS)
    odd = tuple([2] * _TOY_BLOCKS)
    subnets = [Subnet(i, even if i % 2 == 0 else odd) for i in range(6)]
    return supernet, SubnetStream(subnets)


def count_violations(store: ParameterStore) -> int:
    """READs that happened before an earlier subnet's WRITE to the same
    layer — Definition 2 violations."""
    # First pass: who uses each layer (every user reads then writes it).
    users: Dict[tuple, set] = {}
    for record in store.access_log:
        users.setdefault(record.layer, set()).add(record.subnet_id)
    # Second pass: a READ by y violates Definition 2 for every earlier
    # user x of the same layer whose WRITE has not yet been committed.
    violations = 0
    written: Dict[tuple, set] = {}
    for record in store.access_log:
        if record.kind is AccessKind.WRITE:
            written.setdefault(record.layer, set()).add(record.subnet_id)
        else:
            done = written.get(record.layer, set())
            violations += sum(
                1
                for sid in users[record.layer]
                if sid < record.subnet_id and sid not in done
            )
    return violations


def _gantt(result: PipelineResult, width: int = 72) -> str:
    rows = result.trace.gantt_rows()
    makespan = result.trace.makespan or 1.0
    lines = []
    for gpu in range(result.num_gpus):
        cells = [" "] * width
        for gpu_id, start, end, kind, subnet in rows:
            if gpu_id != gpu or kind == "stall":
                continue
            lo = int(start / makespan * (width - 1))
            hi = max(lo + 1, int(end / makespan * (width - 1)))
            mark = str(subnet % 10) if kind == "fwd" else chr(ord("a") + subnet % 10)
            for pos in range(lo, min(hi, width)):
                cells[pos] = mark
        lines.append(f"GPU{gpu} |" + "".join(cells) + "|")
    lines.append("       (digits: forward of SNi; letters: backward of SNi)")
    return "\n".join(lines)


def run(seed: int = 2022) -> List[ToyRun]:
    runs: List[ToyRun] = []
    for name, config in (
        # Windows sized so several subnets overlap on the 2-stage toy
        # pipeline — the regime the paper's figure depicts.
        ("ASP (PipeDream)", pipedream(inject_window=4)),
        ("BSP (GPipe)", gpipe(bulk_size=4)),
        ("CSP (NASPipe)", naspipe(inject_window=4)),
    ):
        supernet, stream = _toy_stream()
        plane = FunctionalPlane(supernet, SeedSequenceTree(seed))
        engine = PipelineEngine(
            supernet,
            stream,
            config,
            ClusterSpec(num_gpus=_STAGES),
            batch=16,
            functional=plane,
        )
        result = engine.run()
        runs.append(
            ToyRun(
                policy=name,
                result=result,
                violations=count_violations(plane.store),
                gantt=_gantt(result),
            )
        )
    return runs


def format_text(runs: List[ToyRun]) -> str:
    lines = ["Figure 1 — ASP vs BSP vs CSP on a dependent subnet stream", ""]
    for toy in runs:
        lines.append(
            f"{toy.policy}: bubble={toy.result.bubble_ratio:.2f} "
            f"violated-dependencies={toy.violations}"
        )
        lines.append(toy.gantt)
        lines.append("")
    return "\n".join(lines)
