"""Table 5: computation vs swap time for eight representative layers.

The catalog carries the paper's measured forward/backward times verbatim
and derives parameter sizes from the swap times at PCIe 3.0 ×16
bandwidth; this experiment replays a CPU→GPU copy of each layer type
through the simulated copy engine and reports both, confirming the
simulator's swap model is anchored to the testbed's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.devices import CopyEngine
from repro.supernet.catalog import (
    CV_LAYER_TYPES,
    NLP_LAYER_TYPES,
    PCIE_BANDWIDTH_BYTES_PER_MS,
    LayerTypeProfile,
)

__all__ = ["LayerCostRow", "run", "format_text"]


@dataclass
class LayerCostRow:
    domain: str
    layer: str
    fwd_ms: float
    bwd_ms: float
    swap_ms_profile: float  # analytic (param bytes / PCIe bandwidth)
    swap_ms_simulated: float  # measured through the copy-engine model


def _simulated_swap(profile: LayerTypeProfile) -> float:
    engine = CopyEngine(gpu_id=0, bandwidth_bytes_per_ms=PCIE_BANDWIDTH_BYTES_PER_MS)
    return engine.enqueue(profile.param_bytes, now=0.0)


def run() -> List[LayerCostRow]:
    rows: List[LayerCostRow] = []
    for domain, profiles in (("NLP", NLP_LAYER_TYPES), ("CV", CV_LAYER_TYPES)):
        for profile in profiles:
            rows.append(
                LayerCostRow(
                    domain=domain,
                    layer=profile.name,
                    fwd_ms=profile.fwd_ms,
                    bwd_ms=profile.bwd_ms,
                    swap_ms_profile=profile.swap_ms,
                    swap_ms_simulated=_simulated_swap(profile),
                )
            )
    return rows


def format_text(rows: List[LayerCostRow]) -> str:
    lines = [
        "Table 5 — computation vs swap time per representative layer",
        "",
        f"{'domain':>6s} {'layer':>14s} {'Comp. (fwd/bwd ms)':>20s} "
        f"{'Swap (ms)':>10s} {'Sim swap':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row.domain:>6s} {row.layer:>14s} "
            f"{row.fwd_ms:>9.2f}/{row.bwd_ms:<9.2f} "
            f"{row.swap_ms_profile:>10.2f} {row.swap_ms_simulated:>9.2f}"
        )
    return "\n".join(lines)
