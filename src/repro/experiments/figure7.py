"""Figure 7: scalability — total GPU ALU utilisation from 4 to 16 GPUs
on NLP.c1 (the largest space all four systems support)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines import ALL_SYSTEMS
from repro.experiments.common import ExperimentScale, run_system

__all__ = ["ScalabilityPoint", "run", "format_text"]

_SPACE = "NLP.c1"
_DEFAULT_GPU_COUNTS = (4, 8, 12, 16)


@dataclass
class ScalabilityPoint:
    system: str
    num_gpus: int
    total_alu: Optional[float]
    bubble: Optional[float]
    throughput: Optional[float]


def run(
    scale: Optional[ExperimentScale] = None,
    gpu_counts: Sequence[int] = _DEFAULT_GPU_COUNTS,
    systems: Optional[List[str]] = None,
) -> List[ScalabilityPoint]:
    scale = scale or ExperimentScale.small()
    points: List[ScalabilityPoint] = []
    for system in systems or ALL_SYSTEMS:
        for gpus in gpu_counts:
            result = run_system(_SPACE, system, scale, num_gpus=gpus)
            if result is None:
                points.append(ScalabilityPoint(system, gpus, None, None, None))
            else:
                points.append(
                    ScalabilityPoint(
                        system,
                        gpus,
                        result.total_alu,
                        result.bubble_ratio,
                        result.throughput_samples_per_sec,
                    )
                )
    return points


def format_text(points: List[ScalabilityPoint]) -> str:
    gpu_counts = sorted({p.num_gpus for p in points})
    lines = [
        f"Figure 7 — total GPU ALU utilisation on {_SPACE} vs cluster size",
        "",
        f"{'system':>10s} " + "".join(f"{g:>8d}" for g in gpu_counts),
    ]
    systems = []
    for point in points:
        if point.system not in systems:
            systems.append(point.system)
    for system in systems:
        row = {p.num_gpus: p.total_alu for p in points if p.system == system}
        rendered = "".join(
            f"{row[g]:>7.1f}x" if row.get(g) is not None else f"{'OOM':>8s}"
            for g in gpu_counts
        )
        lines.append(f"{system:>10s} {rendered}")
    return "\n".join(lines)
