"""CSV export for experiment results (plotting-tool interchange).

Every runner returns lists of dataclass rows; this module flattens any of
them to CSV so figures can be re-plotted outside the terminal renderers.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from pathlib import Path
from typing import Sequence

__all__ = ["rows_to_csv", "write_csv"]


def _flatten(value):
    if isinstance(value, dict):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return ";".join(str(v) for v in value)
    return value


def rows_to_csv(rows: Sequence[object]) -> str:
    """Render a list of dataclass instances as CSV text.

    Nested containers are flattened to strings; heavyweight fields whose
    names suggest raw traces are skipped.
    """
    if not rows:
        return ""
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError(f"expected dataclass rows, got {type(first).__name__}")
    skip = {"trace", "result", "points", "gantt"}
    names = [
        field.name
        for field in dataclasses.fields(first)
        if field.name not in skip
    ]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(names)
    for row in rows:
        writer.writerow([_flatten(getattr(row, name)) for name in names])
    return buffer.getvalue()


def write_csv(rows: Sequence[object], path) -> Path:
    """Write rows to ``path``; returns the path."""
    target = Path(path)
    target.write_text(rows_to_csv(rows))
    return target
