"""Causal-dependency DAG throughput bound — an analysis beyond the paper.

CSP's achievable throughput is limited by chains of causally dependent
subnets: if ``y`` shares a layer in its stage-``K`` slice with an earlier
``x``, then ``y``'s forward at ``K`` cannot precede ``x``'s backward at
the stage owning that layer.  Ignoring *all* resource contention (GPUs,
links, swaps) and keeping only those precedence edges plus per-hop
forward/backward latencies yields a lower bound on per-subnet interval —
an upper bound on any CSP scheduler's throughput.

We use this to (a) verify the engine's CSP scheduler is near-optimal
(it tracks the bound within a few percent), and (b) explain why uniform
SPOS streams pipeline worse than evolution-shaped generational streams:
uniform sampling clusters conflicts between chronological neighbours,
tightening the chains (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.supernet.sampler import SubnetStream
from repro.supernet.supernet import Supernet

__all__ = ["DagBound", "dag_bound", "run", "format_text"]


@dataclass
class DagBound:
    space: str
    stream_kind: str
    subnets: int
    per_subnet_ms: float  # steady-state interval between completions
    latency_ms: float  # one subnet's end-to-end latency L
    chain_factor: float  # L / per_subnet_ms (effective chain gap)


def dag_bound(
    supernet: Supernet,
    stream: SubnetStream,
    stages: int,
    batch: int,
    stream_kind: str = "?",
    warmup_fraction: float = 0.25,
) -> DagBound:
    """Compute the contention-free completion schedule of ``stream``."""
    space = supernet.space
    blocks = space.num_blocks
    scale = supernet.batch_time_scale(batch)

    def stage_of_block(block: int) -> int:
        return min(stages - 1, block * stages // blocks)

    # Per-hop latencies from mean layer costs (+ recompute on backward).
    mean_fwd = mean_bwd = 0.0
    sample = stream[0]
    for layer in sample.layer_ids():
        profile = supernet.profile(layer)
        mean_fwd += profile.fwd_ms_ref
        mean_bwd += profile.bwd_ms_ref + profile.fwd_ms_ref
    fwd_hop = mean_fwd / stages * scale
    bwd_hop = mean_bwd / stages * scale

    release: Dict[Tuple[int, int], float] = {}  # (subnet, stage) -> bwd end
    last_user: Dict[Tuple[int, int], int] = {}  # layer -> latest user
    completions: List[float] = []
    for subnet in stream:
        fwd_start = 0.0
        stage_starts = []
        for stage in range(stages):
            start = fwd_start if stage == 0 else stage_starts[-1] + fwd_hop
            lo = stage * blocks // stages
            hi = (stage + 1) * blocks // stages
            for block in range(lo, hi):
                layer = (block, subnet.choices[block])
                earlier = last_user.get(layer)
                if earlier is not None:
                    start = max(start, release[(earlier, stage_of_block(block))])
            stage_starts.append(start)
        end_fwd = stage_starts[-1] + fwd_hop
        for stage in range(stages - 1, -1, -1):
            release[(subnet.subnet_id, stage)] = end_fwd + (stages - stage) * bwd_hop
        completions.append(release[(subnet.subnet_id, 0)])
        for layer in subnet.layer_ids():
            last_user[layer] = subnet.subnet_id
    warmup = int(len(completions) * warmup_fraction)
    steady = completions[warmup:]
    if len(steady) < 2:
        raise ValueError("stream too short for a steady-state estimate")
    per_subnet = (steady[-1] - steady[0]) / (len(steady) - 1)
    latency = stages * (fwd_hop + bwd_hop)
    return DagBound(
        space=space.name,
        stream_kind=stream_kind,
        subnets=len(stream),
        per_subnet_ms=per_subnet,
        latency_ms=latency,
        chain_factor=latency / per_subnet if per_subnet > 0 else float("inf"),
    )


def run(
    space_names: Optional[List[str]] = None,
    subnets: int = 300,
    stages: int = 8,
    seed: int = 2022,
) -> List[DagBound]:
    from repro.seeding import SeedSequenceTree
    from repro.supernet.search_space import get_search_space

    bounds: List[DagBound] = []
    for name in space_names or ["NLP.c1", "NLP.c2", "NLP.c3"]:
        space = get_search_space(name)
        supernet = Supernet(space)
        seeds = SeedSequenceTree(seed)
        batch = space.max_batch
        uniform = SubnetStream.sample(space, seeds, subnets)
        generational = SubnetStream.sample_generational(
            space, seeds.child("gen"), subnets
        )
        bounds.append(dag_bound(supernet, uniform, stages, batch, "uniform-SPOS"))
        bounds.append(
            dag_bound(supernet, generational, stages, batch, "generational")
        )
    return bounds


def format_text(bounds: List[DagBound]) -> str:
    lines = [
        "Dependency-DAG throughput bound (contention-free CSP limit)",
        "",
        f"{'space':>7s} {'stream':>14s} {'ms/subnet':>10s} {'latency':>8s} "
        f"{'chain factor':>13s}",
    ]
    for bound in bounds:
        lines.append(
            f"{bound.space:>7s} {bound.stream_kind:>14s} "
            f"{bound.per_subnet_ms:>10.0f} {bound.latency_ms:>8.0f} "
            f"{bound.chain_factor:>13.1f}"
        )
    return "\n".join(lines)
