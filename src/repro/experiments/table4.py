"""Table 4: access and update order of one shared supernet layer.

A probe stream is crafted so a chosen layer is sampled by the 2nd, 5th
and 7th subnets (exactly the paper's example).  Each synchronisation
pattern runs on 4 and 8 GPUs; the parameter store's access log yields the
``2F-2B-5F-5B-7F-7B`` strings.  CSP's order is identical on both cluster
sizes; GPipe's and PipeDream's reorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines import gpipe, naspipe, pipedream
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import get_search_space
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import Supernet

__all__ = ["run", "format_text", "PROBE_LAYER"]

_BLOCKS = 16
_CHOICES = 8
#: the probed layer: block 2, candidate 3 (arbitrary but fixed)
PROBE_LAYER = (2, 3)
_SHARING_SUBNETS = (2, 5, 7)
_STREAM_LEN = 10


def _probe_stream() -> Tuple[Supernet, List[Subnet]]:
    """Ten subnets; subnets 2, 5 and 7 activate PROBE_LAYER, everyone
    else avoids both the probe layer and each other where possible."""
    space = get_search_space("NLP.c3").scaled(
        name="probe",
        num_blocks=_BLOCKS,
        choices_per_block=_CHOICES,
        functional_width=16,
    )
    supernet = Supernet(space)
    subnets = []
    for sid in range(_STREAM_LEN):
        base = sid % (_CHOICES - 1)
        choices = [(base + block) % _CHOICES for block in range(_BLOCKS)]
        if sid in _SHARING_SUBNETS:
            choices[PROBE_LAYER[0]] = PROBE_LAYER[1]
        elif choices[PROBE_LAYER[0]] == PROBE_LAYER[1]:
            choices[PROBE_LAYER[0]] = (PROBE_LAYER[1] + 1) % _CHOICES
        subnets.append(Subnet(sid, tuple(choices)))
    return supernet, subnets


@dataclass
class AccessOrderRow:
    system: str
    orders: Dict[int, str]  # gpu count -> access order string

    @property
    def is_reproducible(self) -> bool:
        return len(set(self.orders.values())) == 1


def run(seed: int = 2022, gpu_counts: Tuple[int, ...] = (4, 8)) -> List[AccessOrderRow]:
    rows: List[AccessOrderRow] = []
    for name, config in (
        # Defaults: GPipe's bulk and PipeDream's window scale with the
        # pipeline depth, which is exactly why their access orders change
        # between cluster sizes (paper Table 4).
        ("NASPipe", naspipe(inject_window=6)),
        ("GPipe", gpipe()),
        ("PipeDream", pipedream()),
    ):
        orders: Dict[int, str] = {}
        for gpus in gpu_counts:
            supernet, subnets = _probe_stream()
            stream = SubnetStream(subnets)
            plane = FunctionalPlane(supernet, SeedSequenceTree(seed))
            engine = PipelineEngine(
                supernet,
                stream,
                config,
                ClusterSpec(num_gpus=gpus),
                batch=16,
                functional=plane,
            )
            engine.run()
            orders[gpus] = plane.store.access_order_string(PROBE_LAYER)
        rows.append(AccessOrderRow(system=name, orders=orders))
    return rows


def format_text(rows: List[AccessOrderRow]) -> str:
    lines = [
        "Table 4 — access & update order of a layer shared by subnets "
        f"{_SHARING_SUBNETS}",
        "",
    ]
    for row in rows:
        lines.append(f"{row.system}:")
        for gpus, order in sorted(row.orders.items()):
            lines.append(f"  {gpus:>2d} GPUs: {order}")
        verdict = "order preserved" if row.is_reproducible else "ORDER DIFFERS"
        lines.append(f"  -> {verdict}")
        lines.append("")
    return "\n".join(lines)
