"""Hybrid multi-search-space traversal (paper §5.5, "future applications").

The paper envisions NASPipe traversing several search spaces
simultaneously, since the runtime "is flexible to hold any number of
causal dependency relations".  We realise it for spaces with equal block
counts (e.g. NLP.c1/c2/c3 all have 48 blocks) by *namespacing* choices:
the hybrid space's per-block candidate list is the concatenation of the
member spaces' candidates, and a member subnet's choice ``c`` in space
``s`` becomes global choice ``offset_s + c``.

Layer identity is preserved (a layer shared by two subnets of the same
member space stays shared; layers of different member spaces never
collide), so the CSP scheduler enforces exactly the dependencies that
exist — and subnets of *different* spaces are mutually independent,
which is precisely why hybrid traversal pipelines so well.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SearchSpaceError
from repro.nn.parameter_store import LayerId
from repro.seeding import SeedSequenceTree
from repro.supernet.sampler import SposSampler, SubnetStream
from repro.supernet.search_space import SearchSpace
from repro.supernet.subnet import Subnet
from repro.supernet.supernet import LayerProfile, Supernet

__all__ = ["hybrid_space", "HybridSupernet", "hybrid_stream"]


def hybrid_space(members: Sequence[SearchSpace]) -> SearchSpace:
    """The union space over ``members`` (equal block counts required)."""
    if not members:
        raise SearchSpaceError("hybrid space needs at least one member")
    blocks = members[0].num_blocks
    domain = members[0].domain
    for member in members[1:]:
        if member.num_blocks != blocks:
            raise SearchSpaceError(
                f"hybrid members must share block count: "
                f"{members[0].name}={blocks}, {member.name}={member.num_blocks}"
            )
        if member.domain != domain:
            raise SearchSpaceError("hybrid members must share a domain")
    return members[0].scaled(
        name="+".join(member.name for member in members),
        choices_per_block=sum(member.choices_per_block for member in members),
    )


class HybridSupernet(Supernet):
    """A supernet whose candidates delegate to the member supernets."""

    def __init__(self, members: Sequence[SearchSpace]) -> None:
        self.members = [Supernet(member) for member in members]
        self.offsets: List[int] = []
        offset = 0
        for member in members:
            self.offsets.append(offset)
            offset += member.choices_per_block
        super().__init__(hybrid_space(members))

    def _member_for_choice(self, choice: int) -> Tuple[Supernet, int]:
        for index in reversed(range(len(self.members))):
            if choice >= self.offsets[index]:
                return self.members[index], choice - self.offsets[index]
        raise IndexError(f"choice {choice} out of range")

    def profile(self, layer: LayerId) -> LayerProfile:
        block, choice = layer
        member, local_choice = self._member_for_choice(choice)
        # Delegate to the member's profile but keep the *global* identity,
        # so dependency analysis and the parameter store see one namespace.
        local = member.profile((block, local_choice))
        cached = self._profiles.get(layer)
        if cached is not None:
            return cached
        profile = LayerProfile(
            layer=layer,
            type_profile=local.type_profile,
            size_scale=local.size_scale,
        )
        self._profiles[layer] = profile
        return profile


def hybrid_stream(
    members: Sequence[SearchSpace],
    seeds: SeedSequenceTree,
    count_per_member: int,
) -> SubnetStream:
    """Round-robin interleave of member-space SPOS streams, re-encoded
    into the hybrid namespace with dense sequence IDs."""
    supernet = HybridSupernet(members)
    samplers = [SposSampler(member, seeds) for member in members]
    merged: List[Subnet] = []
    for round_index in range(count_per_member):
        for member_index, sampler in enumerate(samplers):
            local = sampler.sample()
            offset = supernet.offsets[member_index]
            merged.append(
                Subnet(
                    len(merged),
                    tuple(choice + offset for choice in local.choices),
                )
            )
    return SubnetStream(merged)
