"""Post-training supernet analysis (the paper's §2.1 motivation).

"In NAS studies, analysis (debugging) of supernet training procedures
plays an important role" — and reproducible runs make the collected
information deterministic.  This module turns the parameter store's
access log into the quantities those analyses use:

* per-layer **update counts** — how often each candidate trained (the
  sampling-fairness signal FairNAS optimises);
* **co-activation** statistics — which candidate pairs trained together;
* a **training report** aggregating both with block-level coverage,
  stable across re-runs by Definition 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.nn.parameter_store import AccessKind, LayerId, ParameterStore

__all__ = [
    "update_counts",
    "read_counts",
    "block_coverage",
    "co_activation",
    "TrainingReport",
    "training_report",
]


def update_counts(store: ParameterStore) -> Dict[LayerId, int]:
    """WRITEs per layer — how many training steps each candidate got."""
    counts: Counter = Counter()
    for record in store.access_log:
        if record.kind is AccessKind.WRITE:
            counts[record.layer] += 1
    return dict(counts)


def read_counts(store: ParameterStore) -> Dict[LayerId, int]:
    """READs per layer (forward activations)."""
    counts: Counter = Counter()
    for record in store.access_log:
        if record.kind is AccessKind.READ:
            counts[record.layer] += 1
    return dict(counts)


def block_coverage(store: ParameterStore, num_blocks: int) -> List[int]:
    """Distinct candidates trained at least once, per choice block."""
    seen: Dict[int, set] = {block: set() for block in range(num_blocks)}
    for record in store.access_log:
        if record.kind is AccessKind.WRITE:
            block, choice = record.layer
            if block in seen:
                seen[block].add(choice)
    return [len(seen[block]) for block in range(num_blocks)]


def co_activation(
    store: ParameterStore, block_a: int, block_b: int
) -> Dict[Tuple[int, int], int]:
    """How often candidate pairs (choice@a, choice@b) trained together.

    Derived from WRITE records grouped by subnet — each subnet writes one
    candidate per block, so its write set reconstructs its architecture.
    """
    per_subnet: Dict[int, Dict[int, int]] = {}
    for record in store.access_log:
        if record.kind is not AccessKind.WRITE:
            continue
        block, choice = record.layer
        per_subnet.setdefault(record.subnet_id, {})[block] = choice
    pairs: Counter = Counter()
    for choices in per_subnet.values():
        if block_a in choices and block_b in choices:
            pairs[(choices[block_a], choices[block_b])] += 1
    return dict(pairs)


@dataclass
class TrainingReport:
    """Aggregate view of one training run's layer usage."""

    subnets_trained: int
    distinct_layers_trained: int
    total_updates: int
    min_updates: int
    max_updates: int
    #: max/min update count among trained layers (1.0 = perfectly fair)
    fairness_ratio: float
    block_coverage: List[int]

    def summary(self) -> str:
        return (
            f"{self.subnets_trained} subnets trained "
            f"{self.distinct_layers_trained} distinct layers "
            f"({self.total_updates} updates; per-layer min/max "
            f"{self.min_updates}/{self.max_updates}, fairness "
            f"{self.fairness_ratio:.2f})"
        )


def training_report(
    store: ParameterStore, num_blocks: Optional[int] = None
) -> TrainingReport:
    """Build a :class:`TrainingReport` from the access log."""
    updates = update_counts(store)
    subnets = {
        record.subnet_id
        for record in store.access_log
        if record.kind is AccessKind.WRITE
    }
    if updates:
        min_updates = min(updates.values())
        max_updates = max(updates.values())
        fairness = max_updates / min_updates if min_updates else float("inf")
    else:
        min_updates = max_updates = 0
        fairness = 1.0
    blocks = num_blocks
    if blocks is None:
        blocks = 1 + max((layer[0] for layer in updates), default=-1)
    return TrainingReport(
        subnets_trained=len(subnets),
        distinct_layers_trained=len(updates),
        total_updates=sum(updates.values()),
        min_updates=min_updates,
        max_updates=max_updates,
        fairness_ratio=fairness,
        block_coverage=block_coverage(store, blocks),
    )
