"""Evolutionary architecture search over a trained supernet.

Regularised evolution in the style the paper defaults to ([29], "we used
evolution as the default search strategy"): maintain a population of
candidates, tournament-select a parent, mutate one choice block, score the
child against the trained supernet, and age out the oldest member.  Every
random draw flows from the seed tree, so given a reproducible supernet
(CSP training) the search outcome is bit-for-bit reproducible too — the
paper's "search accuracy" columns in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.nas.evaluator import EvaluatedSubnet, SubnetEvaluator
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace
from repro.supernet.subnet import Subnet

__all__ = ["SearchOutcome", "EvolutionSearch"]


@dataclass
class SearchOutcome:
    """Result of one architecture search."""

    best: EvaluatedSubnet
    evaluated: int
    history: List[float]  # best-so-far score after each evaluation

    @property
    def best_score(self) -> float:
        return self.best.score

    @property
    def best_choices(self):
        return self.best.subnet.choices


class EvolutionSearch:
    """Aging (regularised) evolution with tournament selection."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: SubnetEvaluator,
        seeds: SeedSequenceTree,
        population_size: int = 12,
        tournament_size: int = 4,
    ) -> None:
        if tournament_size > population_size:
            raise ValueError("tournament cannot exceed population")
        self.space = space
        self.evaluator = evaluator
        self.population_size = population_size
        self.tournament_size = tournament_size
        self._rng = seeds.fresh_generator(f"search/evolution/{space.name}")

    # ------------------------------------------------------------------
    def _random_subnet(self, subnet_id: int) -> Subnet:
        choices = tuple(
            int(c)
            for c in self._rng.integers(
                0, self.space.choices_per_block, size=self.space.num_blocks
            )
        )
        return Subnet(subnet_id, choices)

    def _mutate(self, parent: Subnet, child_id: int) -> Subnet:
        block = int(self._rng.integers(0, self.space.num_blocks))
        new_choice = int(self._rng.integers(0, self.space.choices_per_block))
        return parent.mutate(block, new_choice).with_id(child_id)

    # ------------------------------------------------------------------
    def run(self, evaluations: int = 40) -> SearchOutcome:
        """Search with a budget of ``evaluations`` candidate scorings."""
        if evaluations < self.population_size:
            raise ValueError(
                f"budget {evaluations} below population {self.population_size}"
            )
        population: List[EvaluatedSubnet] = [
            self.evaluator.score(self._random_subnet(i))
            for i in range(self.population_size)
        ]
        history: List[float] = []
        best = max(population, key=lambda e: e.score)
        for member in population:
            best = member if member.score > best.score else best
            history.append(best.score)
        next_id = self.population_size
        while next_id < evaluations:
            contenders_idx = self._rng.choice(
                len(population), size=self.tournament_size, replace=False
            )
            parent = max(
                (population[int(i)] for i in contenders_idx),
                key=lambda e: e.score,
            )
            child = self.evaluator.score(self._mutate(parent.subnet, next_id))
            population.append(child)
            population.pop(0)  # age out the oldest member
            if child.score > best.score:
                best = child
            history.append(best.score)
            next_id += 1
        return SearchOutcome(best=best, evaluated=next_id, history=history)
