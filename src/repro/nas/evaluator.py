"""Candidate evaluation: held-out loss, top-k accuracy, proxy BLEU.

The paper scores searched DNNs with BLEU (NLP) and top-5 accuracy (CV).
On the synthetic substrate:

* **top-k accuracy** is computed for real — forward the candidate on
  held-out batches and check whether the target is among the k largest
  logits;
* **proxy BLEU** is a fixed monotone map from held-out cross-entropy to a
  BLEU-scaled number (``100·exp(−loss/2.5)``), calibrated so converged
  losses land in the paper's 19-22 BLEU band.  It preserves exactly what
  the experiments need: identical losses ⇒ identical scores (bitwise
  reproducibility propagates to reported scores) and lower loss ⇒ higher
  score (rankings are meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.engines.functional_plane import FunctionalPlane
from repro.supernet.subnet import Subnet

__all__ = ["proxy_bleu", "top_k_accuracy", "SubnetEvaluator"]


def proxy_bleu(loss: float) -> float:
    """Monotone proxy mapping held-out loss to a BLEU-scaled score."""
    return float(100.0 * np.exp(-loss / 2.5))


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose target is among the top-k logits."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    top_k = np.argpartition(-logits, kth=min(k, logits.shape[1] - 1), axis=1)[:, :k]
    hits = (top_k == targets[:, None]).any(axis=1)
    return float(hits.mean())


@dataclass
class EvaluatedSubnet:
    subnet: Subnet
    loss: float
    score: float


class SubnetEvaluator:
    """Scores candidate subnets against a trained functional plane."""

    def __init__(
        self,
        plane: FunctionalPlane,
        eval_batch_count: int = 4,
        eval_batch_size: int = 16,
        top_k: int = 5,
    ) -> None:
        self.plane = plane
        self.domain = plane.space.domain
        self.top_k = top_k
        self._batches = plane.data.eval_batches(eval_batch_count, eval_batch_size)

    # ------------------------------------------------------------------
    def held_out_loss(self, subnet: Subnet) -> float:
        return self.plane.evaluate_subnet(subnet, self._batches)

    def _accuracy(self, subnet: Subnet) -> float:
        correct = 0.0
        total = 0
        for features, targets in self._batches:
            logits = self.plane.inference_forward(subnet, features)
            correct += top_k_accuracy(logits, targets, self.top_k) * len(targets)
            total += len(targets)
        return correct / total

    def score(self, subnet: Subnet) -> EvaluatedSubnet:
        """Domain-appropriate quality: proxy BLEU (NLP), top-5 % (CV)."""
        loss = self.held_out_loss(subnet)
        if self.domain == "NLP":
            quality = proxy_bleu(loss)
        else:
            quality = 100.0 * self._accuracy(subnet)
        return EvaluatedSubnet(subnet=subnet, loss=loss, score=quality)

    def score_many(self, subnets: Sequence[Subnet]) -> List[EvaluatedSubnet]:
        return [self.score(subnet) for subnet in subnets]
