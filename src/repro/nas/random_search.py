"""Random search baseline: score uniformly sampled candidates."""

from __future__ import annotations

from repro.nas.evaluator import SubnetEvaluator
from repro.nas.evolution import SearchOutcome
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace
from repro.supernet.subnet import Subnet

__all__ = ["RandomSearch"]


class RandomSearch:
    """Uniform random candidate scoring with the same budget interface as
    :class:`~repro.nas.evolution.EvolutionSearch`."""

    def __init__(
        self,
        space: SearchSpace,
        evaluator: SubnetEvaluator,
        seeds: SeedSequenceTree,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self._rng = seeds.fresh_generator(f"search/random/{space.name}")

    def run(self, evaluations: int = 40) -> SearchOutcome:
        best = None
        history = []
        for index in range(evaluations):
            choices = tuple(
                int(c)
                for c in self._rng.integers(
                    0, self.space.choices_per_block, size=self.space.num_blocks
                )
            )
            candidate = self.evaluator.score(Subnet(index, choices))
            if best is None or candidate.score > best.score:
                best = candidate
            history.append(best.score)
        assert best is not None
        return SearchOutcome(best=best, evaluated=evaluations, history=history)
