"""High-level API: train a supernet under a chosen system, then search.

:class:`SupernetTrainer` is the facade examples and experiments use — it
wires the seed tree, sampler, functional plane, cluster, engine and search
together so a complete "train + search + score" run is a few lines:

    trainer = SupernetTrainer("NLP.c2", seed=2022, num_gpus=8)
    run = trainer.train(naspipe(), steps=200)
    outcome = trainer.search(run)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig
from repro.engines.functional_plane import FunctionalPlane
from repro.engines.pipeline import PipelineEngine, PipelineResult
from repro.engines.sequential import SequentialEngine, SequentialResult
from repro.nas.evaluator import SubnetEvaluator
from repro.nas.evolution import EvolutionSearch, SearchOutcome
from repro.seeding import SeedSequenceTree
from repro.sim.cluster import ClusterSpec
from repro.supernet.sampler import SubnetStream
from repro.supernet.search_space import SearchSpace, get_search_space
from repro.supernet.supernet import Supernet

__all__ = ["TrainingRun", "SupernetTrainer"]


@dataclass
class TrainingRun:
    """A trained supernet plus the pipeline run that produced it."""

    system: SystemConfig
    plane: FunctionalPlane
    result: PipelineResult

    @property
    def digest(self) -> Optional[str]:
        return self.result.digest

    @property
    def final_loss(self) -> Optional[float]:
        if not self.result.losses:
            return None
        return self.result.losses[max(self.result.losses)]

    def mean_tail_loss(self, tail: int = 10) -> Optional[float]:
        """Mean loss over the last ``tail`` subnets (noise-robust)."""
        if not self.result.losses:
            return None
        ids = sorted(self.result.losses)[-tail:]
        return sum(self.result.losses[i] for i in ids) / len(ids)

    def analysis(self):
        """Post-training usage report (see :mod:`repro.nas.analysis`)."""
        from repro.nas.analysis import training_report

        return training_report(
            self.plane.store, self.plane.space.num_blocks
        )

    def save(self, params_path, optimizer_path=None) -> None:
        """Checkpoint the trained supernet (weights + optimizer state)."""
        self.plane.save_checkpoint(params_path, optimizer_path)


class SupernetTrainer:
    """Facade over the whole stack for one search space."""

    def __init__(
        self,
        space: "SearchSpace | str",
        seed: int = 2022,
        num_gpus: int = 8,
        functional_batch: int = 8,
        stream_kind: str = "spos",
        generation: int = 8,
        learning_rate: float = 0.3,
        momentum: float = 0.9,
        max_grad_norm: float = 5.0,
    ) -> None:
        self.space = get_search_space(space) if isinstance(space, str) else space
        self.seed = seed
        self.num_gpus = num_gpus
        self.functional_batch = functional_batch
        if stream_kind not in ("spos", "generational", "fair"):
            raise ValueError(f"unknown stream kind {stream_kind!r}")
        self.stream_kind = stream_kind
        self.generation = generation
        # Momentum at a brisk learning rate makes update-order effects
        # (BSP's staleness, ASP's inconsistency) visible in final loss,
        # as the paper's Table 3 shows at production scale.
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.max_grad_norm = max_grad_norm
        self.supernet = Supernet(self.space)

    # ------------------------------------------------------------------
    def _seeds(self) -> SeedSequenceTree:
        return SeedSequenceTree(self.seed)

    def make_stream(self, steps: int) -> SubnetStream:
        """The subnet stream for a run — a pure function of the seed, so
        every system trains the *same* ordered workload."""
        seeds = self._seeds()
        if self.stream_kind == "generational":
            return SubnetStream.sample_generational(
                self.space, seeds, steps, self.generation
            )
        if self.stream_kind == "fair":
            from repro.supernet.sampler import FairSampler

            return SubnetStream(FairSampler(self.space, seeds).sample_many(steps))
        return SubnetStream.sample(self.space, seeds, steps)

    def make_plane(
        self, record_accesses: bool = True, recompute: bool = False
    ) -> FunctionalPlane:
        from repro.nn.optim import MomentumSGD

        return FunctionalPlane(
            self.supernet,
            self._seeds(),
            functional_batch=self.functional_batch,
            optimizer=MomentumSGD(
                self.learning_rate, self.momentum, self.max_grad_norm
            ),
            recompute=recompute,
            record_accesses=record_accesses,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        system: SystemConfig,
        steps: int = 100,
        batch: Optional[int] = None,
        with_functional: bool = True,
        num_gpus: Optional[int] = None,
    ) -> TrainingRun:
        """Train ``steps`` subnets under ``system`` on the simulated
        cluster; raises GpuOutOfMemoryError when the system cannot fit."""
        stream = self.make_stream(steps)
        # Honour the system's activation-recomputation setting in the
        # functional plane too (bit-identical either way — the test suite
        # proves it — but intent should match the timing model).
        plane = (
            self.make_plane(recompute=system.recompute)
            if with_functional
            else None
        )
        engine = PipelineEngine(
            self.supernet,
            stream,
            system,
            ClusterSpec(num_gpus=num_gpus or self.num_gpus),
            batch=batch,
            functional=plane,
        )
        result = engine.run()
        assert plane is None or result.digest is not None
        return TrainingRun(system=system, plane=plane, result=result)  # type: ignore[arg-type]

    def train_sequential(self, steps: int = 100) -> SequentialResult:
        """The ground-truth single-device run (reproducibility baseline)."""
        stream = self.make_stream(steps)
        plane = self.make_plane()
        return SequentialEngine(self.supernet, stream, plane).run()

    # ------------------------------------------------------------------
    def search(
        self,
        run: TrainingRun,
        evaluations: int = 40,
        population_size: int = 12,
    ) -> SearchOutcome:
        """Evolutionary search over the trained supernet's weights."""
        evaluator = SubnetEvaluator(run.plane)
        search = EvolutionSearch(
            self.space,
            evaluator,
            self._seeds(),
            population_size=population_size,
        )
        return search.run(evaluations)
