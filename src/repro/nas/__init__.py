"""The NAS layer: exploration algorithms, search, and the high-level
trainer API that ties supernet training and architecture search together
(the role Retiarii plays in front of NASPipe in the paper)."""

from repro.nas.evaluator import SubnetEvaluator, proxy_bleu, top_k_accuracy
from repro.nas.evolution import EvolutionSearch, SearchOutcome
from repro.nas.random_search import RandomSearch
from repro.nas.trainer import SupernetTrainer, TrainingRun
from repro.nas.hybrid import HybridSupernet, hybrid_space, hybrid_stream

__all__ = [
    "SubnetEvaluator",
    "proxy_bleu",
    "top_k_accuracy",
    "EvolutionSearch",
    "SearchOutcome",
    "RandomSearch",
    "SupernetTrainer",
    "TrainingRun",
    "HybridSupernet",
    "hybrid_space",
    "hybrid_stream",
]
