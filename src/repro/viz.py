"""Trace visualisation and export: ASCII Gantt charts and Chrome traces.

Two consumers:

* terminal inspection — :func:`ascii_gantt` renders per-GPU timelines
  with forward/backward/stall marks (used by the Figure 1 experiment);
* offline tooling — :func:`to_chrome_trace` emits the Chrome tracing
  JSON format (``chrome://tracing`` / Perfetto), one row per GPU plus
  counter tracks for cache hits, so a full pipeline run can be inspected
  interactively.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.sim.trace import ExecutionTrace

__all__ = ["ascii_gantt", "to_chrome_trace", "utilization_sparklines"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def ascii_gantt(
    trace: ExecutionTrace,
    width: int = 100,
    start: float = 0.0,
    end: Optional[float] = None,
) -> str:
    """Render per-GPU timelines over ``[start, end)`` virtual time.

    Digits mark forwards (subnet id mod 10), letters mark backwards,
    ``.`` marks swap stalls.
    """
    horizon = end if end is not None else trace.end_time
    span = max(horizon - start, 1e-9)
    lines = []
    for gpu in range(trace.num_gpus):
        cells = [" "] * width
        for interval in trace.intervals:
            if interval.gpu_id != gpu or interval.end <= start:
                continue
            if interval.start >= horizon:
                continue
            lo = int((max(interval.start, start) - start) / span * (width - 1))
            hi = max(
                lo + 1,
                int((min(interval.end, horizon) - start) / span * (width - 1)),
            )
            if interval.kind == "stall":
                mark = "."
            elif interval.kind == "fwd":
                mark = str(interval.subnet_id % 10)
            else:
                mark = chr(ord("a") + interval.subnet_id % 10)
            for position in range(lo, min(hi, width)):
                cells[position] = mark
        lines.append(f"GPU{gpu:<2d}|{''.join(cells)}|")
    lines.append(
        "      digits: fwd of SN(i mod 10); letters: bwd; '.': swap stall"
    )
    return "\n".join(lines)


def utilization_sparklines(trace: ExecutionTrace, buckets: int = 60) -> str:
    """One sparkline per GPU: compute-busy fraction per time bucket."""
    span = max(trace.makespan, 1e-9)
    lines = []
    for gpu in range(trace.num_gpus):
        busy = [0.0] * buckets
        for interval in trace.intervals:
            if interval.gpu_id != gpu or interval.kind == "stall":
                continue
            lo = interval.start / span * buckets
            hi = interval.end / span * buckets
            for bucket in range(int(lo), min(int(hi) + 1, buckets)):
                overlap = min(hi, bucket + 1) - max(lo, bucket)
                if overlap > 0:
                    busy[bucket] += overlap
        marks = "".join(
            _BLOCKS[min(len(_BLOCKS) - 1, int(value * (len(_BLOCKS) - 1)))]
            for value in busy
        )
        lines.append(f"GPU{gpu:<2d} {marks}")
    return "\n".join(lines)


def to_chrome_trace(trace: ExecutionTrace, label: str = "naspipe") -> str:
    """Chrome tracing JSON for ``chrome://tracing`` / Perfetto.

    Durations are reported in microseconds with 1 virtual ms = 1 trace
    microsecond (Chrome's native unit), preserving relative proportions.
    """
    events: List[Dict[str, object]] = []
    for gpu in range(trace.num_gpus):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": gpu,
                "args": {"name": f"GPU {gpu}"},
            }
        )
    for interval in trace.intervals:
        name = {
            "fwd": f"SN{interval.subnet_id} forward",
            "bwd": f"SN{interval.subnet_id} backward",
            "stall": f"SN{interval.subnet_id} swap stall",
        }[interval.kind]
        events.append(
            {
                "name": name,
                "cat": interval.kind,
                "ph": "X",
                "pid": 0,
                "tid": interval.gpu_id,
                "ts": interval.start,
                "dur": interval.duration,
                "args": {"subnet": interval.subnet_id},
            }
        )
    for sid, time in sorted(trace.subnet_completion_times.items()):
        events.append(
            {
                "name": f"SN{sid} complete",
                "cat": "completion",
                "ph": "i",
                "pid": 0,
                "tid": 0,
                "ts": time,
                "s": "g",
            }
        )
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms", "otherData": {"label": label}}
    )
