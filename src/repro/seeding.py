"""Deterministic random-number management.

The paper's Definition 1 (reproducibility) requires that a training run be
bitwise identical given the same dataset and the same random seeds, even on
a different cluster.  Everything stochastic in this package — weight
initialisation, SPOS subnet sampling, synthetic data generation, search
mutation — therefore draws from a :class:`SeedSequenceTree` rooted at one
integer seed.

Child streams are derived by *name*, never by call order, so adding a new
consumer of randomness cannot silently shift every other stream (the usual
way reproducibility rots in ML codebases).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["SeedSequenceTree", "derive_seed"]

_MASK64 = (1 << 64) - 1


def derive_seed(root: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root`` and a stream ``name``.

    The derivation hashes both inputs, so distinct names give independent
    streams and the mapping is stable across Python versions and platforms
    (unlike the builtin ``hash``).
    """
    digest = hashlib.sha256(f"{root}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK64


class SeedSequenceTree:
    """A root seed plus a registry of named child generators.

    Example
    -------
    >>> seeds = SeedSequenceTree(1234)
    >>> sampler_rng = seeds.generator("spos-sampler")
    >>> init_rng = seeds.generator("weight-init")
    >>> seeds.generator("spos-sampler") is sampler_rng
    True
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, int):
            raise TypeError(f"root seed must be int, got {type(root_seed).__name__}")
        self.root_seed = root_seed & _MASK64
        self._generators: Dict[str, np.random.Generator] = {}

    def seed_for(self, name: str) -> int:
        """Return the deterministic child seed for stream ``name``."""
        return derive_seed(self.root_seed, name)

    def generator(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for stream ``name``.

        Repeated calls with the same name return the *same* generator
        object, so a stream's state advances across call sites that share
        a name — which is what consumers like the SPOS sampler need.
        """
        if name not in self._generators:
            self._generators[name] = self.fresh_generator(name)
        return self._generators[name]

    def fresh_generator(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` with pristine state."""
        return np.random.Generator(np.random.PCG64(self.seed_for(name)))

    def child(self, name: str) -> "SeedSequenceTree":
        """Return a sub-tree rooted at the child seed for ``name``."""
        return SeedSequenceTree(self.seed_for(name))

    # ------------------------------------------------------------------
    # checkpointing (repro.ft): cached stream states survive a restart
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of every *cached* named stream.

        Consumers that hold a generator from :meth:`generator` advance
        its state across calls; a crash-restart must resume those streams
        mid-sequence, not from their pristine seeds.  (Streams obtained
        via :meth:`fresh_generator` are pure functions of their name and
        need no snapshot.)
        """
        return {
            "root_seed": self.root_seed,
            "streams": {
                name: generator.bit_generator.state
                for name, generator in sorted(self._generators.items())
            },
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Restore cached streams captured by :meth:`snapshot_state`.

        The snapshot must come from a tree with the same root seed —
        restoring another run's streams would silently break the
        seed-to-stream mapping Definition 1 relies on.
        """
        if snapshot.get("root_seed") != self.root_seed:
            raise ValueError(
                f"snapshot root seed {snapshot.get('root_seed')} != "
                f"tree root seed {self.root_seed}"
            )
        for name, state in snapshot.get("streams", {}).items():
            generator = self.generator(name)
            generator.bit_generator.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceTree(root_seed={self.root_seed})"
