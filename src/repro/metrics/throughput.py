"""Throughput normalisation helpers (Figure 5's presentation)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["normalize_throughput", "speedup_table", "subnets_per_hour"]


def normalize_throughput(
    throughputs: Mapping[str, Optional[float]], reference: str
) -> Dict[str, Optional[float]]:
    """Scale throughputs so ``reference`` is 1.0 (None marks OOM).

    Provenance: the paper's Figure 5 presentation (normalized throughput
    with NASPipe = 1.0). Inputs are samples/s (or any consistent rate);
    output is unitless relative throughput.
    """
    base = throughputs.get(reference)
    if not base:
        raise ValueError(f"reference system {reference!r} missing or zero")
    return {
        name: (value / base if value is not None else None)
        for name, value in throughputs.items()
    }


def speedup_table(
    rows: Sequence[Tuple[str, Mapping[str, Optional[float]]]],
    target: str,
    baseline: str,
) -> List[Tuple[str, Optional[float]]]:
    """Per-space speedup of ``target`` over ``baseline`` (None on OOM).

    Provenance: §5.1's headline speedup claims (e.g. NASPipe 6.8× over
    GPipe on NLP.c1). Output is a unitless ratio per search space.
    """
    table: List[Tuple[str, Optional[float]]] = []
    for space, throughputs in rows:
        t = throughputs.get(target)
        b = throughputs.get(baseline)
        table.append((space, (t / b) if t and b else None))
    return table


def subnets_per_hour(subnets_completed: int, makespan_ms: float) -> float:
    """The red-bar annotation of Figures 5/6.

    Converts a completed-subnet count and a makespan in **virtual ms**
    into subnets per hour (the artifact's Experiment 2 metric).
    """
    if makespan_ms <= 0:
        return 0.0
    return subnets_completed / (makespan_ms / 3_600_000.0)
