"""Throughput normalisation helpers (Figure 5's presentation)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["normalize_throughput", "speedup_table", "subnets_per_hour"]


def normalize_throughput(
    throughputs: Mapping[str, Optional[float]], reference: str
) -> Dict[str, Optional[float]]:
    """Scale throughputs so ``reference`` is 1.0 (None marks OOM)."""
    base = throughputs.get(reference)
    if not base:
        raise ValueError(f"reference system {reference!r} missing or zero")
    return {
        name: (value / base if value is not None else None)
        for name, value in throughputs.items()
    }


def speedup_table(
    rows: Sequence[Tuple[str, Mapping[str, Optional[float]]]],
    target: str,
    baseline: str,
) -> List[Tuple[str, Optional[float]]]:
    """Per-space speedup of ``target`` over ``baseline`` (None on OOM)."""
    table: List[Tuple[str, Optional[float]]] = []
    for space, throughputs in rows:
        t = throughputs.get(target)
        b = throughputs.get(baseline)
        table.append((space, (t / b) if t and b else None))
    return table


def subnets_per_hour(subnets_completed: int, makespan_ms: float) -> float:
    """The red-bar annotation of Figures 5/6."""
    if makespan_ms <= 0:
        return 0.0
    return subnets_completed / (makespan_ms / 3_600_000.0)
