"""Metric computation and reproducibility verification utilities."""

from repro.metrics.bubbles import gpipe_theory_bubble, pipeline_theory_bubble
from repro.metrics.reproducibility import (
    ReproducibilityReport,
    access_order_for_layer,
    compare_digests,
    verify_csp_equivalence,
)
from repro.metrics.throughput import normalize_throughput, speedup_table

__all__ = [
    "gpipe_theory_bubble",
    "pipeline_theory_bubble",
    "ReproducibilityReport",
    "access_order_for_layer",
    "compare_digests",
    "verify_csp_equivalence",
    "normalize_throughput",
    "speedup_table",
]
