"""Analytic bubble-ratio formulas used to sanity-check the simulator.

The classic GPipe result: with ``D`` stages and ``B`` concurrently
injected tasks per flush round, each stage computes for ``B`` slots out
of a ``B + D − 1`` slot round, so the idle (bubble) fraction is
``(D − 1) / (B + D − 1)`` — the paper's constant 0.57 for its GPipe
configuration at 8 GPUs.
"""

from __future__ import annotations

__all__ = ["gpipe_theory_bubble", "pipeline_theory_bubble"]


def gpipe_theory_bubble(stages: int, bulk: int) -> float:
    """Idle fraction of a BSP pipeline round (fill + drain overhead).

    Provenance: the closed form behind GPipe's cells in the paper's
    Table 2 "Bub." column (§5.1); anchors the simulator's measured
    ``ExecutionTrace.bubble_ratio()`` in the theory-anchor tests.
    Returns a unitless fraction of the makespan in ``[0, 1)``.
    """
    if stages < 1 or bulk < 1:
        raise ValueError("stages and bulk must be positive")
    return (stages - 1) / (bulk + stages - 1)


def pipeline_theory_bubble(stages: int, in_flight: int) -> float:
    """Idle fraction of a continuously fed pipeline with a bounded
    in-flight window (ramp amortised away): zero once the window covers
    the depth, otherwise the under-fill fraction.

    Provenance: the paper's Figure 7 scalability discussion (§5.4 —
    bubble grows with pipeline depth once the in-flight window stops
    covering it). Returns a unitless fraction of the makespan.
    """
    if stages < 1 or in_flight < 1:
        raise ValueError("stages and in_flight must be positive")
    if in_flight >= stages:
        return 0.0
    return 1.0 - in_flight / stages
