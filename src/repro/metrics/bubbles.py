"""Analytic bubble-ratio formulas used to sanity-check the simulator.

The classic GPipe result: with ``D`` stages and ``B`` concurrently
injected tasks per flush round, each stage computes for ``B`` slots out
of a ``B + D − 1`` slot round, so the idle (bubble) fraction is
``(D − 1) / (B + D − 1)`` — the paper's constant 0.57 for its GPipe
configuration at 8 GPUs.
"""

from __future__ import annotations

__all__ = ["gpipe_theory_bubble", "pipeline_theory_bubble"]


def gpipe_theory_bubble(stages: int, bulk: int) -> float:
    """Idle fraction of a BSP pipeline round (fill + drain overhead)."""
    if stages < 1 or bulk < 1:
        raise ValueError("stages and bulk must be positive")
    return (stages - 1) / (bulk + stages - 1)


def pipeline_theory_bubble(stages: int, in_flight: int) -> float:
    """Idle fraction of a continuously fed pipeline with a bounded
    in-flight window (ramp amortised away): zero once the window covers
    the depth, otherwise the under-fill fraction."""
    if stages < 1 or in_flight < 1:
        raise ValueError("stages and in_flight must be positive")
    if in_flight >= stages:
        return 0.0
    return 1.0 - in_flight / stages
