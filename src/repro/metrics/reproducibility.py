"""Reproducibility verification (paper Definition 1, Tables 3 & 4).

Tools to compare training runs bit-for-bit:

* :func:`compare_digests` — are two runs' final weights identical?
* :func:`verify_csp_equivalence` — assert a pipeline run reproduced the
  sequential ground truth (digest *and* per-subnet losses);
* :func:`access_order_for_layer` — Table 4's ``2F-2B-5F-5B`` strings;
* :class:`ReproducibilityReport` — the cross-cluster-size matrix the
  paper's Table 3 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproducibilityError
from repro.nn.parameter_store import LayerId, ParameterStore

__all__ = [
    "compare_digests",
    "verify_csp_equivalence",
    "access_order_for_layer",
    "ReproducibilityReport",
]


def compare_digests(digest_a: Optional[str], digest_b: Optional[str]) -> bool:
    """True iff both digests exist and are identical.

    Provenance: paper Definition 1 ("bitwise equal final weights").
    Digests are SHA-256 over the parameter store in canonical layer
    order, so equality means equal to the last float32 mantissa bit.
    """
    return digest_a is not None and digest_a == digest_b


def verify_csp_equivalence(sequential_result, pipeline_result) -> None:
    """Raise :class:`ReproducibilityError` unless the pipeline run is
    bitwise equivalent to the sequential ground truth.

    Provenance: Definition 1 plus Theorem 1's consequence that a CSP
    schedule reproduces sequential execution exactly — checked on both
    the final-weight digest and every per-subnet float32 loss.
    """
    if not compare_digests(sequential_result.digest, pipeline_result.digest):
        raise ReproducibilityError(
            f"digest mismatch: sequential {sequential_result.digest} vs "
            f"pipeline {pipeline_result.digest}"
        )
    for subnet_id, loss in sequential_result.losses.items():
        pipeline_loss = pipeline_result.losses.get(subnet_id)
        if pipeline_loss != loss:
            raise ReproducibilityError(
                f"loss mismatch for subnet {subnet_id}: "
                f"sequential {loss!r} vs pipeline {pipeline_loss!r}"
            )


def access_order_for_layer(store: ParameterStore, layer: LayerId) -> str:
    """Table-4 style access/update order string for one layer.

    Provenance: paper Table 4 (§5.2), which prints per-layer
    forward/backward orders like ``"2F-2B-5F-5B"`` (subnet sequence ID +
    F/B) to show CSP's order is cluster-size invariant while the
    baselines' orders shift.
    """
    return store.access_order_string(layer)


@dataclass
class ReproducibilityReport:
    """Losses/scores per (system, gpu count) — the paper's Table 3 cells
    (§5.2): final float32 training loss, proxy score (BLEU stand-in) and
    SHA-256 weight digest for every cluster size a system ran on."""

    space: str
    losses: Dict[Tuple[str, int], float] = field(default_factory=dict)
    scores: Dict[Tuple[str, int], float] = field(default_factory=dict)
    digests: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def record(
        self,
        system: str,
        gpus: int,
        loss: float,
        score: float,
        digest: str,
    ) -> None:
        key = (system, gpus)
        self.losses[key] = loss
        self.scores[key] = score
        self.digests[key] = digest

    def is_reproducible(self, system: str) -> bool:
        """True iff every recorded cluster size produced identical bits."""
        digests = [
            digest for (name, _gpus), digest in sorted(self.digests.items())
            if name == system
        ]
        return len(digests) > 0 and len(set(digests)) == 1

    def gpu_counts(self, system: str) -> List[int]:
        return sorted(gpus for (name, gpus) in self.losses if name == system)

    def row(self, system: str) -> str:
        cells = []
        for gpus in self.gpu_counts(system):
            cells.append(f"{self.losses[(system, gpus)]:.4f}")
        for gpus in self.gpu_counts(system):
            cells.append(f"{self.scores[(system, gpus)]:.2f}")
        verdict = "reproducible" if self.is_reproducible(system) else "DIVERGENT"
        return f"{system:>10s} | " + " ".join(cells) + f" | {verdict}"
