"""NASPipe reproduction: reproducible pipeline-parallel supernet training.

Reimplementation of *NASPipe: High Performance and Reproducible Pipeline
Parallel Supernet Training via Causal Synchronous Parallelism* (Zhao et
al., ASPLOS 2022) as a pure-Python library: the CSP scheduler, context
predictor and manager, layer mirroring, the GPipe/PipeDream/VPipe
baselines, a deterministic numpy training substrate, and a discrete-event
GPU-cluster simulator replacing the paper's 32-GPU testbed.

Quickstart::

    from repro import (
        get_search_space, Supernet, SubnetStream, SeedSequenceTree,
        naspipe, PipelineEngine,
    )

    space = get_search_space("NLP.c1")
    supernet = Supernet(space)
    seeds = SeedSequenceTree(2022)
    stream = SubnetStream.sample(space, seeds, count=64)
    engine = PipelineEngine(supernet, stream, naspipe())
    result = engine.run()
    print(result.summary())
"""

from repro.seeding import SeedSequenceTree
from repro.config import SystemConfig
from repro.supernet import (
    SearchSpace,
    Subnet,
    SubnetStream,
    Supernet,
    SposSampler,
    get_search_space,
    list_search_spaces,
)
from repro.partition import balanced_partition, static_partition_for_space
from repro.sim import Cluster, ClusterSpec
from repro.core import (
    ContextPredictor,
    CspScheduler,
    DependencyTracker,
    StageContextManager,
    Task,
    TaskKind,
)
from repro.engines import (
    FunctionalPlane,
    IntraSubnetEngine,
    PipelineEngine,
    PipelineResult,
    SequentialEngine,
)
from repro.baselines import (
    ALL_SYSTEMS,
    ABLATIONS,
    gpipe,
    naspipe,
    naspipe_wo_mirroring,
    naspipe_wo_predictor,
    naspipe_wo_scheduler,
    pipedream,
    ssp,
    system_by_name,
    vpipe,
)
from repro.memory_model import max_feasible_batch
from repro.replay import RunManifest, execute_manifest, record_run, verify_replay
from repro.viz import ascii_gantt, to_chrome_trace, utilization_sparklines
from repro import errors

__version__ = "1.0.0"

__all__ = [
    "SeedSequenceTree",
    "SystemConfig",
    "SearchSpace",
    "Subnet",
    "SubnetStream",
    "Supernet",
    "SposSampler",
    "get_search_space",
    "list_search_spaces",
    "balanced_partition",
    "static_partition_for_space",
    "Cluster",
    "ClusterSpec",
    "ContextPredictor",
    "CspScheduler",
    "DependencyTracker",
    "StageContextManager",
    "Task",
    "TaskKind",
    "FunctionalPlane",
    "IntraSubnetEngine",
    "PipelineEngine",
    "PipelineResult",
    "SequentialEngine",
    "ALL_SYSTEMS",
    "ABLATIONS",
    "naspipe",
    "gpipe",
    "pipedream",
    "vpipe",
    "ssp",
    "naspipe_wo_scheduler",
    "naspipe_wo_predictor",
    "naspipe_wo_mirroring",
    "system_by_name",
    "max_feasible_batch",
    "RunManifest",
    "execute_manifest",
    "record_run",
    "verify_replay",
    "ascii_gantt",
    "to_chrome_trace",
    "utilization_sparklines",
    "errors",
    "__version__",
]
