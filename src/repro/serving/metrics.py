"""Latency/throughput statistics and the serving benchmark report.

Percentiles use the **nearest-rank** definition: for ``n`` sorted
samples, the p-th percentile is the value at 1-based rank
``ceil(p × n / 100)`` — computed in integer arithmetic, never by float
interpolation.  Interpolated percentiles mix two samples into a number
nobody observed and whose low bits depend on the platform's float
rounding; nearest-rank always returns an actual measured latency and is
bit-stable, which is what lets the CI gate ``cmp`` two reports.

The report is canonical JSON (sorted keys, two-space indent, trailing
newline — the repo-wide convention), and :func:`check_regression`
mirrors the committed-baseline gate shape of
:mod:`repro.experiments.scheduler_cost`: perf fields fail on a factor,
fingerprint fields fail on any bitwise difference.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = [
    "nearest_rank",
    "latency_stats",
    "latency_histogram",
    "serving_report_json",
    "format_serving_report",
    "check_regression",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

_PERCENTILES = (50, 95, 99)

#: Fixed latency bucket bounds (virtual ms) shared by the scenario
#: report's histogram and the telemetry plane's ``serving_latency_ms``
#: instrument — one set of edges, so the online and post-hoc views of
#: the same run bucket identically.
DEFAULT_LATENCY_BUCKETS_MS = (
    5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0,
    300.0, 400.0, 600.0, 800.0, 1200.0, 1600.0, 2400.0, 3200.0,
)


def nearest_rank(values: Sequence[float], percentile: int) -> float:
    """Nearest-rank percentile of ``values`` (need not be sorted).

    ``rank = ceil(percentile × n / 100)`` in integer math, clamped to at
    least 1; the result is ``sorted(values)[rank - 1]`` — always one of
    the inputs, never an interpolation.

    >>> nearest_rank([15, 20, 35, 40, 50], 30)
    20
    >>> nearest_rank([7.0], 99)
    7.0
    """
    if not values:
        raise ValueError("nearest_rank of an empty sample")
    if not isinstance(percentile, int):
        raise TypeError(
            f"percentile must be int (nearest-rank is integer math), "
            f"got {type(percentile).__name__}"
        )
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    ordered = sorted(values)
    n = len(ordered)
    rank = -(-percentile * n // 100)  # ceil-div without floats
    return ordered[max(rank, 1) - 1]


def latency_stats(latencies_ms: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample (empty → all zero)."""
    if not latencies_ms:
        return {f"p{p}": 0.0 for p in _PERCENTILES} | {"mean": 0.0, "max": 0.0}
    stats = {f"p{p}": nearest_rank(latencies_ms, p) for p in _PERCENTILES}
    stats["mean"] = sum(latencies_ms) / len(latencies_ms)
    stats["max"] = max(latencies_ms)
    return stats


def latency_histogram(
    latencies_ms: Sequence[float],
    buckets: Optional[Sequence[float]] = None,
) -> Dict:
    """Fixed-boundary latency histogram for scenario reports.

    ``buckets`` are ascending upper bounds (default
    :data:`DEFAULT_LATENCY_BUCKETS_MS`); counts are per-bucket
    (non-cumulative) with a final overflow bucket, so ``sum(counts) ==
    count`` always.  Consistency with the nearest-rank percentiles is
    structural — a percentile value always lands in a bucket whose
    cumulative count reaches that percentile's rank (tested in
    ``tests/test_serving_metrics.py``).
    """
    bounds = tuple(
        float(b) for b in (buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS)
    )
    if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ValueError(
            f"histogram buckets must be non-empty and strictly ascending, "
            f"got {list(bounds)}"
        )
    counts = [0] * (len(bounds) + 1)
    total = 0.0
    for value in latencies_ms:
        number = float(value)
        total += number
        for index, bound in enumerate(bounds):
            if number <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return {
        "buckets_ms": list(bounds),
        "counts": counts,
        "count": len(latencies_ms),
        "sum_ms": total,
    }


def serving_report_json(report: Dict) -> str:
    """Canonical byte-stable encoding (the CI gate ``cmp``'s two)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _scenario_lines(name: str, scenario: Dict) -> List[str]:
    latency = scenario["latency_ms"]
    lines = [
        f"{name}:",
        f"  requests {scenario['requests']:>6d}   completed "
        f"{scenario['completed']:>6d}   shed {scenario['shed']:>5d} "
        f"({scenario['shed_rate']:.1%})",
        f"  latency ms  p50 {latency['p50']:>9.3f}  p95 "
        f"{latency['p95']:>9.3f}  p99 {latency['p99']:>9.3f}  "
        f"max {latency['max']:>9.3f}",
        f"  throughput {scenario['throughput_rps']:>8.1f} req/s   "
        f"SLO({scenario['slo_ms']:g} ms) attainment "
        f"{scenario['slo_attainment']:.1%}",
        f"  cache: result hit {scenario['result_hit_rate']:.1%}   "
        f"layer hit {scenario['layer_hit_rate']:.1%}   "
        f"combined {scenario['hit_rate']:.1%}",
    ]
    return lines


def format_serving_report(report: Dict) -> str:
    """Human-readable rendering of a ``BENCH_serving`` payload."""
    lines = [
        f"Serving bench — {report['config']['space']}, "
        f"{report['config']['num_gpus']} leased GPUs of "
        f"{report['config']['total_gpus']}, "
        f"{report['config']['requests']} requests "
        f"({report['config']['arrival']} arrivals)",
        "",
    ]
    for name in ("primary", "no_cache", "overload"):
        scenario = report.get(name)
        if scenario is None:
            continue
        lines.extend(_scenario_lines(name, scenario))
        lines.append("")
    primary = report.get("primary")
    no_cache = report.get("no_cache")
    if primary and no_cache:
        speedup = (
            no_cache["latency_ms"]["p99"] / primary["latency_ms"]["p99"]
            if primary["latency_ms"]["p99"]
            else 0.0
        )
        lines.append(
            f"cache effect: p99 {no_cache['latency_ms']['p99']:.3f} -> "
            f"{primary['latency_ms']['p99']:.3f} ms ({speedup:.2f}x), "
            f"hit rate {no_cache['hit_rate']:.1%} -> {primary['hit_rate']:.1%}"
        )
    return "\n".join(lines).rstrip()


def write_bench_json(payload: Dict, path) -> Path:
    """Write the serving payload (``BENCH_serving.json``)."""
    target = Path(path)
    target.write_text(serving_report_json(payload))
    return target


def check_regression(
    payload: Dict, baseline_path, factor: float = 2.0
) -> List[str]:
    """Gate a serving payload against a committed baseline.

    Per scenario: p99 latency regresses when it exceeds ``factor`` × the
    baseline's; throughput regresses when ``rate × factor`` falls below
    the baseline's.  When the two configs are identical the scenario's
    p99, completed and shed counts are additionally compared *bitwise* —
    any difference there is a determinism violation, not a perf delta.
    Structural claims (cache strictly helps; overload sheds; admitted
    requests meet the SLO) are checked unconditionally.
    """
    failures: List[str] = []
    baseline = json.loads(Path(baseline_path).read_text())
    same_config = payload.get("config") == baseline.get("config")
    for name in ("primary", "no_cache", "overload"):
        scenario = payload.get(name)
        base = baseline.get(name)
        if scenario is None or base is None:
            continue
        p99 = scenario["latency_ms"]["p99"]
        base_p99 = base["latency_ms"]["p99"]
        if base_p99 > 0 and p99 > factor * base_p99:
            failures.append(
                f"{name}: p99 {p99:.3f} ms vs baseline {base_p99:.3f} ms "
                f"(>{factor:.1f}x)"
            )
        rate = scenario["throughput_rps"]
        base_rate = base["throughput_rps"]
        if rate * factor < base_rate:
            failures.append(
                f"{name}: {rate:.1f} req/s vs baseline {base_rate:.1f} "
                f"(<1/{factor:.1f}x)"
            )
        if same_config:
            for field in ("completed", "shed"):
                if scenario[field] != base[field]:
                    failures.append(
                        f"{name}: {field} {scenario[field]!r} != baseline "
                        f"{base[field]!r} — determinism violation, not a "
                        f"perf delta"
                    )
            if p99 != base_p99:
                failures.append(
                    f"{name}: p99 {p99!r} != baseline {base_p99!r} — "
                    f"determinism violation, not a perf delta"
                )
    primary = payload.get("primary")
    no_cache = payload.get("no_cache")
    if primary and no_cache:
        if not primary["hit_rate"] > no_cache["hit_rate"]:
            failures.append(
                f"cache did not raise hit rate: {primary['hit_rate']:.3f} "
                f"vs {no_cache['hit_rate']:.3f} uncached"
            )
        if not primary["latency_ms"]["p99"] < no_cache["latency_ms"]["p99"]:
            failures.append(
                f"cache did not lower p99: {primary['latency_ms']['p99']:.3f}"
                f" vs {no_cache['latency_ms']['p99']:.3f} uncached"
            )
    overload = payload.get("overload")
    if overload:
        if overload["shed"] <= 0:
            failures.append("overload scenario shed nothing — not overloaded")
        if overload["slo_attainment"] < 1.0:
            failures.append(
                f"admitted overload requests missed the SLO: attainment "
                f"{overload['slo_attainment']:.3f} < 1.0"
            )
    return failures
