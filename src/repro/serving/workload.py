"""Seeded open-loop load generation for subnet-evaluation serving.

An *open-loop* generator emits requests on a fixed arrival process
regardless of how the server keeps up — the standard way to measure
latency under load without coordinated omission.  Arrivals are either
Poisson (exponential inter-arrival at ``rate_rps``) or bursty (the same
Poisson process whose rate alternates between ``rate_rps ×
burst_factor`` and a matching low phase, period ``burst_period_ms``).

Two knobs shape locality, mirroring how real search clients behave:

* **shared-prefix skew** — with probability ``skew`` a request's first
  ``prefix_blocks`` choices come from one of ``hot_prefixes`` popular
  sub-paths (GreedyNAS keeps a pool of promising partial paths), so
  consecutive requests re-use the same early layer blocks;
* **repeats** — with probability ``repeat_fraction`` a request re-issues
  a previously generated subnet verbatim (many users querying the same
  popular architecture), which is what a digest-keyed result cache can
  serve outright.

All randomness flows through named :class:`~repro.seeding.
SeedSequenceTree` streams, so the request sequence — ids, arrival
times, choices — is a pure function of the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError
from repro.seeding import SeedSequenceTree
from repro.supernet.search_space import SearchSpace
from repro.supernet.subnet import Subnet

__all__ = ["EvalRequest", "WorkloadSpec", "generate_requests"]


@dataclass(frozen=True)
class EvalRequest:
    """One subnet-evaluation query: who, when, and which path."""

    request_id: int
    arrival_ms: float
    subnet: Subnet


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a serving workload (see module docstring)."""

    num_requests: int = 200
    arrival: str = "poisson"  # "poisson" | "bursty"
    rate_rps: float = 50.0  # mean requests per virtual second
    burst_factor: float = 4.0  # bursty: high-phase rate multiplier
    burst_period_ms: float = 200.0  # bursty: length of one phase
    skew: float = 0.6  # P(hot shared prefix)
    hot_prefixes: int = 4  # size of the popular-prefix pool
    prefix_blocks: int = 8  # leading blocks a prefix covers
    repeat_fraction: float = 0.25  # P(verbatim repeat of an earlier subnet)
    seed: int = 2022

    def validate(self, space: SearchSpace) -> None:
        if self.num_requests <= 0:
            raise ConfigError(f"num_requests must be > 0, got {self.num_requests}")
        if self.arrival not in ("poisson", "bursty"):
            raise ConfigError(f"unknown arrival process {self.arrival!r}")
        if self.rate_rps <= 0:
            raise ConfigError(f"rate_rps must be > 0, got {self.rate_rps}")
        if not 0.0 <= self.skew <= 1.0:
            raise ConfigError(f"skew must be in [0, 1], got {self.skew}")
        if not 0.0 <= self.repeat_fraction <= 1.0:
            raise ConfigError(
                f"repeat_fraction must be in [0, 1], got {self.repeat_fraction}"
            )
        if self.prefix_blocks > space.num_blocks:
            raise ConfigError(
                f"prefix_blocks {self.prefix_blocks} exceeds the space's "
                f"{space.num_blocks} blocks"
            )
        if self.skew > 0 and self.hot_prefixes <= 0:
            raise ConfigError("skew > 0 requires hot_prefixes >= 1")


def _arrival_times(spec: WorkloadSpec, seeds: SeedSequenceTree) -> List[float]:
    """Open-loop arrival instants (virtual ms), strictly increasing."""
    rng = seeds.fresh_generator("serving-arrivals")
    mean_gap_ms = 1000.0 / spec.rate_rps
    times: List[float] = []
    now = 0.0
    for _ in range(spec.num_requests):
        gap = float(rng.exponential(mean_gap_ms))
        if spec.arrival == "bursty":
            # Alternate phases: high rate (gap / burst_factor) then low.
            # The low phase stretches gaps so the *mean* rate stays at
            # rate_rps: with factor f, low-phase gaps are scaled by
            # (2f - 1) / f, making the two-phase average exactly 2.
            phase = int(now // spec.burst_period_ms) % 2
            if phase == 0:
                gap /= spec.burst_factor
            else:
                gap *= (2.0 * spec.burst_factor - 1.0) / spec.burst_factor
        now += gap
        times.append(now)
    return times


def _hot_prefix_pool(
    spec: WorkloadSpec, space: SearchSpace, seeds: SeedSequenceTree
) -> List[Tuple[int, ...]]:
    """The popular partial paths shared-prefix requests draw from."""
    rng = seeds.fresh_generator("serving-prefixes")
    return [
        tuple(
            int(rng.integers(0, space.choices_per_block))
            for _ in range(spec.prefix_blocks)
        )
        for _ in range(spec.hot_prefixes)
    ]


def generate_requests(
    spec: WorkloadSpec, space: SearchSpace
) -> List[EvalRequest]:
    """Materialise the full request sequence for ``spec`` over ``space``.

    Deterministic: every draw comes from a named seed stream, so two
    calls with equal spec and space yield identical request lists
    (ids, times, and choice tuples all bitwise equal).
    """
    spec.validate(space)
    seeds = SeedSequenceTree(spec.seed)
    times = _arrival_times(spec, seeds)
    prefixes = _hot_prefix_pool(spec, space, seeds)
    choices_rng = seeds.fresh_generator("serving-choices")
    mix_rng = seeds.fresh_generator("serving-mix")

    requests: List[EvalRequest] = []
    history: List[Tuple[int, ...]] = []
    for request_id in range(spec.num_requests):
        repeat = (
            history
            and float(mix_rng.random()) < spec.repeat_fraction
        )
        if repeat:
            choices = history[int(mix_rng.integers(0, len(history)))]
        else:
            hot = spec.skew > 0 and float(mix_rng.random()) < spec.skew
            prefix: Tuple[int, ...] = ()
            if hot:
                prefix = prefixes[int(mix_rng.integers(0, len(prefixes)))]
            tail = tuple(
                int(choices_rng.integers(0, space.choices_per_block))
                for _ in range(space.num_blocks - len(prefix))
            )
            choices = prefix + tail
        history.append(choices)
        requests.append(
            EvalRequest(
                request_id=request_id,
                arrival_ms=times[request_id],
                subnet=Subnet(request_id, choices),
            )
        )
    return requests
