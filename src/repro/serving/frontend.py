"""The serving engine: leased GPUs, batched scoring, per-request timing.

A :class:`ServingEngine` is one serving *tenant*: it leases
``num_gpus`` from a :class:`~repro.service.manager.ClusterManager`
(so it can co-run beside training jobs on the same fleet), materialises
the lease into a fresh simulated cluster, and drives an open-loop
request stream through admission → batching → pipelined forward-only
scoring, recording arrival / admit / batch / score / done timestamps
per request.

Scoring is forward-only pipeline execution over a **static** partition
(:func:`~repro.partition.static.static_partition_for_space` — serving
has no per-subnet rebalancing; the partition is fixed at deployment):
request *r*'s stage *s* starts when both its stage *s−1* finished and
the stage's GPU is free, stalls until the stage's layer share is
resident (tier-2 cache), then computes the stage's forward time.
Consecutive requests of a batch overlap across stages exactly like
forward microbatches in GPipe.

Everything runs on one discrete-event virtual clock
(:class:`~repro.sim.engine.SimulationEngine`), and every decision —
shed or admit, flush cause, fetch stall — is a pure function of the
seeded workload, so two runs produce byte-identical reports.  The run's
timeline is a schema-validated :class:`~repro.sim.trace.ExecutionTrace`
carrying the six serving event kinds documented in ``docs/TRACING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError, ServiceError
from repro.core.context_manager import StageContextManager
from repro.ft.faults import FLEET_KINDS, NODE_DOWN, FaultEvent, FaultSchedule
from repro.partition.static import static_partition_for_space
from repro.serving.batcher import BatchPolicy, BoundedBatcher, FormedBatch
from repro.serving.cache import LayerBlockCache, ResultCache, subnet_digest
from repro.serving.metrics import (
    latency_histogram,
    latency_stats,
    write_bench_json,
)
from repro.serving.workload import EvalRequest, WorkloadSpec, generate_requests
from repro.service.manager import ClusterManager
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import SimulationEngine
from repro.sim.trace import ExecutionTrace
from repro.supernet.search_space import get_search_space
from repro.supernet.supernet import Supernet

__all__ = ["RequestRecord", "ServingEngine", "ServingSpec", "run_bench"]

_SERVING_KEYS = frozenset(
    {
        "space",
        "space_overrides",
        "num_gpus",
        "total_gpus",
        "eval_batch",
        "slo_ms",
        "result_entries",
        "cache_subnets",
        "result_hit_cost_ms",
        "requests",
        "arrival",
        "rate_rps",
        "burst_factor",
        "burst_period_ms",
        "skew",
        "hot_prefixes",
        "prefix_blocks",
        "repeat_fraction",
        "seed",
        "max_batch",
        "max_linger_ms",
        "queue_bound",
        "overload_rate_factor",
    }
)


@dataclass(frozen=True)
class ServingSpec:
    """One serving deployment: fleet share, workload, policy, caches."""

    space: str = "NLP.c3"
    space_overrides: Optional[Dict] = None
    num_gpus: int = 4  # GPUs this tenant leases (= pipeline stages)
    total_gpus: int = 8  # fleet size when we build the manager ourselves
    eval_batch: int = 32  # samples per evaluation request
    slo_ms: float = 250.0
    result_entries: int = 256  # tier-1 digest cache capacity (0 = off)
    cache_subnets: float = 3.0  # tier-2 capacity, in subnet stage-shares
    result_hit_cost_ms: float = 0.05  # lookup cost charged to a tier-1 hit
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    overload_rate_factor: float = 6.0  # bench: rate multiplier for overload

    @staticmethod
    def from_payload(payload: Dict) -> "ServingSpec":
        unknown = sorted(set(payload) - _SERVING_KEYS)
        if unknown:
            raise ConfigError(f"unknown serving config keys: {unknown}")
        workload = WorkloadSpec(
            num_requests=int(payload.get("requests", 200)),
            arrival=payload.get("arrival", "poisson"),
            rate_rps=float(payload.get("rate_rps", 50.0)),
            burst_factor=float(payload.get("burst_factor", 4.0)),
            burst_period_ms=float(payload.get("burst_period_ms", 200.0)),
            skew=float(payload.get("skew", 0.6)),
            hot_prefixes=int(payload.get("hot_prefixes", 4)),
            prefix_blocks=int(payload.get("prefix_blocks", 8)),
            repeat_fraction=float(payload.get("repeat_fraction", 0.25)),
            seed=int(payload.get("seed", 2022)),
        )
        policy = BatchPolicy(
            max_batch=int(payload.get("max_batch", 8)),
            max_linger_ms=float(payload.get("max_linger_ms", 5.0)),
            queue_bound=int(payload.get("queue_bound", 64)),
        )
        return ServingSpec(
            space=payload.get("space", "NLP.c3"),
            space_overrides=payload.get("space_overrides"),
            num_gpus=int(payload.get("num_gpus", 4)),
            total_gpus=int(payload.get("total_gpus", 8)),
            eval_batch=int(payload.get("eval_batch", 32)),
            slo_ms=float(payload.get("slo_ms", 250.0)),
            result_entries=int(payload.get("result_entries", 256)),
            cache_subnets=float(payload.get("cache_subnets", 3.0)),
            result_hit_cost_ms=float(payload.get("result_hit_cost_ms", 0.05)),
            workload=workload,
            policy=policy,
            overload_rate_factor=float(
                payload.get("overload_rate_factor", 6.0)
            ),
        )


@dataclass
class RequestRecord:
    """The five lifecycle timestamps of one request (plus its fate)."""

    request_id: int
    arrival_ms: float
    outcome: str = "pending"  # "hit" | "completed" | "shed"
    admit_ms: Optional[float] = None
    batch_ms: Optional[float] = None  # batch formation instant
    score_ms: Optional[float] = None  # first compute start on a GPU
    done_ms: Optional[float] = None
    batch_index: Optional[int] = None
    #: times this request's in-flight batch was dissolved by a lease
    #: revocation and the request re-queued (SLO accounting separates
    #: retried requests from fresh ones)
    retries: int = 0

    @property
    def latency_ms(self) -> Optional[float]:
        if self.done_ms is None:
            return None
        return self.done_ms - self.arrival_ms


class ServingEngine:
    """Score one seeded workload on leased GPUs; fully deterministic."""

    def __init__(
        self,
        spec: ServingSpec,
        manager: Optional[ClusterManager] = None,
        cache_enabled: bool = True,
        slots_per_node: int = 4,
        telemetry=None,
    ) -> None:
        self.spec = spec
        space = get_search_space(spec.space)
        if spec.space_overrides:
            space = space.scaled(**spec.space_overrides)
        self.space = space
        self.supernet = Supernet(space)
        self.manager = manager or ClusterManager(
            ClusterSpec(num_gpus=spec.total_gpus)
        )
        self.stages = spec.num_gpus
        self.slots_per_node = slots_per_node
        self.trace = ExecutionTrace(num_gpus=self.stages)
        self.sim = SimulationEngine(trace=self.trace)
        self.cache_enabled = cache_enabled
        self._partition = static_partition_for_space(
            self.supernet, self.stages
        )
        self.result_cache = ResultCache(
            spec.result_entries if cache_enabled else 0
        )
        self.batcher = BoundedBatcher(spec.policy)
        self.records: List[RequestRecord] = []
        self._executor_queue: List[FormedBatch] = []
        self._executor_free = 0.0
        self._executor_busy = False
        self._executor_batch: Optional[FormedBatch] = None
        self._executor_handle = None
        self._backlog = 0  # admitted requests formed but not finished
        # fleet-fault bookkeeping
        self._ran = False
        self._fault_mask: "Optional[frozenset]" = None
        self.revocations = 0
        #: [start, end] spans during which the tenant held no lease
        self.outage_windows: List = []
        self._outage_start: Optional[float] = None
        self._prior_layer_hits = 0
        self._prior_layer_misses = 0
        self._prior_fetch_bytes = 0
        self._prior_peak_resident = 0
        #: the manager meters slot holdings on this plane's virtual clock
        #: (the construction-time acquire below lands at sim.now == 0)
        self.manager.clock = lambda: self.sim.now
        #: optional :class:`~repro.obs.telemetry.TelemetryHub` — pure
        #: observer; attached before the first acquire so metering sees
        #: the construction-time lease
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.attach_serving(self)
        self.lease = None
        self._acquire_data_plane()

    def _acquire_data_plane(self) -> None:
        """Lease GPUs and build the per-lease state: cluster view, stage
        contexts, layer cache.  Called at construction and again after a
        revocation once enough slots are back up — the rebuilt layer
        cache starts **cold** (new devices hold nothing)."""
        self.lease = self.manager.acquire("serving", self.stages)
        self.cluster = self.lease.materialize()
        # Same sizing rule as the training engine: ``cache_subnets``
        # stage-shares of the expected subnet parameter footprint.
        share = self.supernet.expected_subnet_param_count() * 4 / self.stages
        capacity = int(self.spec.cache_subnets * share)
        contexts = [
            StageContextManager(
                stage,
                self.supernet,
                self.cluster.copy_engines[stage],
                capacity,
                self.trace,
            )
            for stage in range(self.stages)
        ]
        self.layer_cache = LayerBlockCache(
            contexts, self._partition, enabled=self.cache_enabled
        )

    def _retire_layer_cache(self) -> None:
        """Fold the doomed incarnation's cache counters into the prior
        totals so the final report accounts for every copy made."""
        self._prior_layer_hits += self.layer_cache.hits()
        self._prior_layer_misses += self.layer_cache.misses()
        stats = self.layer_cache.stats()
        self._prior_fetch_bytes += stats["fetch_bytes"]
        self._prior_peak_resident = max(
            self._prior_peak_resident, stats["peak_resident_bytes"]
        )

    def layer_cache_hits(self) -> int:
        return self._prior_layer_hits + self.layer_cache.hits()

    def layer_cache_misses(self) -> int:
        return self._prior_layer_misses + self.layer_cache.misses()

    def layer_cache_stats(self) -> Dict:
        stats = dict(self.layer_cache.stats())
        stats["hits"] = self.layer_cache_hits()
        stats["misses"] = self.layer_cache_misses()
        stats["fetch_bytes"] += self._prior_fetch_bytes
        stats["peak_resident_bytes"] = max(
            stats["peak_resident_bytes"], self._prior_peak_resident
        )
        return stats

    # ------------------------------------------------------------------
    # request lifecycle
    # ------------------------------------------------------------------
    def _record_request_event(
        self, kind: str, now: float, request_id: int, **attrs
    ) -> None:
        self.trace.record_event(
            kind, now, stage=-1, subnet_id=request_id, **attrs
        )

    def _on_arrival(self, request: EvalRequest) -> None:
        now = self.sim.now
        record = self.records[request.request_id]
        digest = subnet_digest(self.space.name, request.subnet)
        self._record_request_event(
            "request_arrive", now, request.request_id, digest=digest[:12]
        )
        if self.result_cache.enabled:
            score = self.result_cache.get(digest)
            if score is not None:
                record.outcome = "hit"
                record.done_ms = now + self.spec.result_hit_cost_ms
                self._record_request_event(
                    "cache_hit", now, request.request_id, tier="result"
                )
                if self.telemetry is not None:
                    # the one completion no trace event carries a
                    # latency for — report it to the hub directly
                    self.telemetry.on_serving_complete(
                        record.latency_ms, record.retries
                    )
                return
            self._record_request_event(
                "cache_miss", now, request.request_id, tier="result"
            )
        admitted = self.batcher.offer(request, now, self._backlog)
        if not admitted:
            record.outcome = "shed"
            self._record_request_event(
                "request_shed",
                now,
                request.request_id,
                queue_depth=self.batcher.depth() + self._backlog,
            )
            return
        record.admit_ms = now
        self._record_request_event(
            "request_admit",
            now,
            request.request_id,
            queue_depth=self.batcher.depth() + self._backlog,
        )
        batch = self.batcher.flush_full(now)
        if batch is not None:
            self._on_batch(batch)
        else:
            self.sim.schedule(
                now + self.spec.policy.max_linger_ms,
                lambda rid=request.request_id: self._on_linger(rid),
                priority=5,
                label="serving-linger",
            )

    def _on_linger(self, request_id: int) -> None:
        batch = self.batcher.flush_due(self.sim.now, request_id)
        if batch is not None:
            self._on_batch(batch)

    def _on_batch(self, batch: FormedBatch) -> None:
        now = self.sim.now
        self._backlog += len(batch)
        self.trace.record_event(
            "batch_form",
            now,
            stage=-1,
            subnet_id=-1,
            batch=batch.index,
            size=len(batch),
            cause=batch.cause,
            oldest_wait_ms=batch.oldest_wait_ms,
        )
        for request in batch.requests:
            record = self.records[request.request_id]
            record.batch_ms = now
            record.batch_index = batch.index
        if self.cache_enabled and self.lease is not None:
            # Warm the stage caches while the executor finishes earlier
            # batches: copies overlap compute on the async copy engines.
            for request in batch.requests:
                self.layer_cache.prefetch(request.subnet, now)
        self._executor_queue.append(batch)
        self._maybe_start_executor()

    # ------------------------------------------------------------------
    # batch scoring (forward-only pipeline over the static partition)
    # ------------------------------------------------------------------
    def _maybe_start_executor(self) -> None:
        if self.lease is None:
            return  # revoked: formed batches wait for the re-acquire
        if self._executor_busy or not self._executor_queue:
            return
        batch = self._executor_queue.pop(0)
        start = max(self.sim.now, self._executor_free)
        done = self._score_batch(batch, start)
        self._executor_busy = True
        self._executor_free = done
        self._executor_batch = batch
        self._executor_handle = self.sim.schedule(
            done,
            lambda b=batch: self._on_batch_done(b),
            priority=5,
            label="serving-batch-done",
        )

    def _score_batch(self, batch: FormedBatch, start: float) -> float:
        stage_free = [start] * self.stages
        batch_done = start
        for request in batch.requests:
            record = self.records[request.request_id]
            prev_done = start
            first_start: Optional[float] = None
            for stage in range(self.stages):
                t0 = max(prev_done, stage_free[stage])
                plan = self.layer_cache.acquire(request.subnet, stage, t0)
                compute_start = max(t0, plan.ready_time)
                if first_start is None:
                    first_start = compute_start
                compute_ms = sum(
                    self.supernet.layer_fwd_ms(layer, self.spec.eval_batch)
                    for layer in self.layer_cache.stage_layers(
                        request.subnet, stage
                    )
                )
                end = compute_start + compute_ms
                self.layer_cache.release(request.subnet, stage, end)
                stage_free[stage] = end
                prev_done = end
            record.score_ms = first_start
            record.done_ms = prev_done
            record.outcome = "completed"
            batch_done = max(batch_done, prev_done)
        return batch_done

    def _on_batch_done(self, batch: FormedBatch) -> None:
        now = self.sim.now
        self._backlog -= len(batch)
        for request in batch.requests:
            digest = subnet_digest(self.space.name, request.subnet)
            self.result_cache.put(digest, _score_of(digest))
            if self.telemetry is not None:
                record = self.records[request.request_id]
                self.telemetry.on_serving_complete(
                    record.latency_ms, record.retries
                )
        self.layer_cache.after_batch(now)
        self._executor_busy = False
        self._executor_batch = None
        self._executor_handle = None
        self._maybe_start_executor()
        self._maybe_close_outage()

    # ------------------------------------------------------------------
    # fleet faults (lease revocation + deterministic retry)
    # ------------------------------------------------------------------
    def inject_fleet_faults(
        self, schedule: FaultSchedule, slots=None
    ) -> None:
        """Arm a fleet-scoped fault schedule against this serving run.

        Mirrors :meth:`repro.service.scheduler.JobScheduler.
        inject_fleet_faults`; ``slots`` optionally restricts which
        physical slots this engine reacts to (the fleet-chaos harness
        routes one storm across co-located planes with disjoint masks).
        """
        if self._ran:
            raise ServiceError(
                "serving engine already ran; build a fresh one to arm faults"
            )
        if slots is not None:
            self._fault_mask = frozenset(slots)
        for event in schedule:
            if event.kind not in FLEET_KINDS:
                raise ConfigError(
                    f"inject_fleet_faults needs fleet kinds "
                    f"{sorted(FLEET_KINDS)}, got {event.kind!r}"
                )
            self.sim.schedule(
                event.time_ms,
                lambda event=event: self._on_fleet_fault(event),
                label=f"fleet {event.kind}@{event.target}",
            )

    def _fleet_slot_group(self, event: FaultEvent) -> List[int]:
        total = self.manager.total_gpus
        if event.kind == NODE_DOWN:
            base = event.target * self.slots_per_node
            return [
                s for s in range(base, base + self.slots_per_node) if s < total
            ]
        return [event.target] if event.target < total else []

    def _on_fleet_fault(self, event: FaultEvent) -> None:
        now = self.sim.now
        label = f"{event.kind}@{event.target} t={event.time_ms:g}ms"
        for slot in self._fleet_slot_group(event):
            if self._fault_mask is not None and slot not in self._fault_mask:
                continue
            if self.manager.is_down(slot):
                continue
            lease = self.manager.revoke(slot, fault=label)
            self.sim.schedule(
                now + event.duration_ms,
                lambda slot=slot: self._on_slot_up(slot),
                label=f"slot-up {slot}",
            )
            if lease is None:
                continue
            if self.lease is not None and lease.lease_id == self.lease.lease_id:
                self._on_lease_revoked(slot, event.kind)

    def _on_lease_revoked(self, slot: int, kind: str) -> None:
        """The serving lease was struck: dissolve in-flight batches and
        re-queue their requests at the batcher front (deterministic
        retry order: executing batch first, then executor-queue order,
        admission order within a batch)."""
        now = self.sim.now
        self.revocations += 1
        assert self.lease is not None
        self.trace.record_event(
            "lease_revoke",
            now,
            stage=-1,
            job="serving",
            lease=self.lease.lease_id,
            slot=slot,
            fault=kind,
        )
        dissolved: List[FormedBatch] = []
        if self._executor_batch is not None:
            self._executor_handle.cancel()
            dissolved.append(self._executor_batch)
            self._executor_batch = None
            self._executor_handle = None
            self._executor_busy = False
        dissolved.extend(self._executor_queue)
        self._executor_queue = []
        self._executor_free = now
        # the executing batch's records were pre-timestamped at executor
        # start; those results never happened
        retrying: List = []
        for batch in dissolved:
            self._backlog -= len(batch)
            for request in batch.requests:
                record = self.records[request.request_id]
                record.outcome = "pending"
                record.batch_ms = None
                record.score_ms = None
                record.done_ms = None
                record.batch_index = None
                record.retries += 1
                self._record_request_event(
                    "request_retry",
                    now,
                    request.request_id,
                    retries=record.retries,
                    batch=batch.index,
                )
                retrying.append(request)
        self._retire_layer_cache()
        self.lease.release()  # idempotent: frees the revoked residual
        self.lease = None
        if self._outage_start is None:  # merge back-to-back revocations
            self._outage_start = now
        if not retrying:
            return
        requeued, shed = self.batcher.requeue(retrying, now, self._backlog)
        for request in shed:
            record = self.records[request.request_id]
            record.outcome = "shed"
            self._record_request_event(
                "request_shed",
                now,
                request.request_id,
                queue_depth=self.batcher.depth() + self._backlog,
            )
        for request in requeued:
            self.sim.schedule(
                now + self.spec.policy.max_linger_ms,
                lambda rid=request.request_id: self._on_linger(rid),
                priority=5,
                label="serving-linger",
            )
        while True:
            batch = self.batcher.flush_full(now)
            if batch is None:
                break
            self._on_batch(batch)

    def _on_slot_up(self, slot: int) -> None:
        self.manager.mark_up(slot)
        if (
            self.lease is None
            and self.manager.available_gpus >= self.stages
        ):
            self._acquire_data_plane()
            self._maybe_start_executor()
            self._maybe_close_outage()

    def _maybe_close_outage(self) -> None:
        """An outage's *impact* window closes when the backlog it built
        has drained (executor idle again), not when the lease returns:
        fresh requests queued behind the retried backlog are outage
        casualties too, and the SLO accounting must see them inside the
        window."""
        if (
            self.lease is not None
            and self._outage_start is not None
            and not self._executor_busy
            and not self._executor_queue
        ):
            self.outage_windows.append((self._outage_start, self.sim.now))
            self._outage_start = None

    # ------------------------------------------------------------------
    def run(self) -> "ServingResult":
        self._ran = True
        # co-tenant deployments share the manager; re-install this
        # plane's clock in case another plane's construction moved it
        self.manager.clock = lambda: self.sim.now
        requests = generate_requests(self.spec.workload, self.space)
        self.records = [
            RequestRecord(request_id=r.request_id, arrival_ms=r.arrival_ms)
            for r in requests
        ]
        for request in requests:
            self.sim.schedule(
                request.arrival_ms,
                lambda r=request: self._on_arrival(r),
                priority=0,
                label="serving-arrival",
            )
        self.sim.run()
        if self._outage_start is not None:  # never re-acquired
            self.outage_windows.append((self._outage_start, self.sim.now))
            self._outage_start = None
        if self.lease is not None:
            self.lease.release()
            self.lease = None
        if self.telemetry is not None:
            self.telemetry.finalize(self.sim.now)
        return ServingResult(self)


def _score_of(digest: str) -> float:
    """Deterministic pseudo-score in [0, 1) from the subnet digest.

    The functional plane's real evaluation quality lives in
    ``repro.nas``; serving benchmarks only need a stable, digest-pure
    value to memoise.
    """
    return int(digest[:12], 16) / float(16**12)


class ServingResult:
    """Finished run: per-request records plus scenario-level stats."""

    def __init__(self, engine: ServingEngine) -> None:
        self.spec = engine.spec
        self.records = engine.records
        self.trace = engine.trace
        self.result_cache = engine.result_cache
        self.layer_cache = engine.layer_cache
        self.batches_formed = engine.batcher.batches_formed
        self.revocations = engine.revocations
        self.outage_windows = list(engine.outage_windows)
        self._layer_hits = engine.layer_cache_hits()
        self._layer_misses = engine.layer_cache_misses()
        self._layer_stats = engine.layer_cache_stats()
        done_times = [
            r.done_ms for r in self.records if r.done_ms is not None
        ]
        self.makespan_ms = max(done_times) if done_times else 0.0

    def scenario_report(self) -> Dict:
        completed = [r for r in self.records if r.done_ms is not None]
        shed = [r for r in self.records if r.outcome == "shed"]
        latencies = [r.latency_ms for r in completed]
        # SLO attainment is computed over requests that never had a
        # batch dissolved under them; retried requests are accounted
        # separately (a revocation is not a scheduling-policy failure)
        fresh_lat = [r.latency_ms for r in completed if r.retries == 0]
        retried_lat = [r.latency_ms for r in completed if r.retries > 0]
        result_hits = self.result_cache.hits
        result_total = self.result_cache.hits + self.result_cache.misses
        layer_hits = self._layer_hits
        layer_total = layer_hits + self._layer_misses
        combined_total = result_total + layer_total
        slo = self.spec.slo_ms
        return {
            "requests": len(self.records),
            "completed": len(completed),
            "shed": len(shed),
            "shed_rate": len(shed) / len(self.records) if self.records else 0.0,
            "batches": self.batches_formed,
            "latency_ms": latency_stats(latencies),
            "latency_histogram": latency_histogram(latencies),
            "throughput_rps": (
                len(completed) / (self.makespan_ms / 1000.0)
                if self.makespan_ms
                else 0.0
            ),
            "slo_ms": slo,
            "slo_attainment": (
                sum(1 for lat in fresh_lat if lat <= slo) / len(fresh_lat)
                if fresh_lat
                else 0.0
            ),
            "revocations": self.revocations,
            "retries": sum(r.retries for r in self.records),
            "retried": {
                "completed": len(retried_lat),
                "slo_attainment": (
                    sum(1 for lat in retried_lat if lat <= slo)
                    / len(retried_lat)
                    if retried_lat
                    else 0.0
                ),
                "latency_ms": latency_stats(retried_lat),
            },
            "result_hit_rate": (
                result_hits / result_total if result_total else 0.0
            ),
            "layer_hit_rate": (
                layer_hits / layer_total if layer_total else 0.0
            ),
            "hit_rate": (
                (result_hits + layer_hits) / combined_total
                if combined_total
                else 0.0
            ),
            "cache": {
                "result_hits": result_hits,
                "result_misses": self.result_cache.misses,
                "result_evictions": self.result_cache.evictions,
                **self._layer_stats,
            },
            "makespan_ms": self.makespan_ms,
        }


# ----------------------------------------------------------------------
# the benchmark: three scenarios over one config
# ----------------------------------------------------------------------
def run_bench(payload: Dict) -> Dict:
    """The ``BENCH_serving.json`` payload for one serving config.

    Three scenarios share the spec: **primary** (both cache tiers on),
    **no_cache** (identical workload, caches disabled — every layer
    copy re-paid, no digest memoisation), and **overload** (arrival
    rate × ``overload_rate_factor``, caches on) exercising deterministic
    shedding while admitted requests stay inside the SLO.
    """
    spec = ServingSpec.from_payload(payload)
    primary = ServingEngine(spec, cache_enabled=True).run()
    no_cache = ServingEngine(spec, cache_enabled=False).run()
    overload_workload = WorkloadSpec(
        **{
            **spec.workload.__dict__,
            "rate_rps": spec.workload.rate_rps * spec.overload_rate_factor,
        }
    )
    overload_spec = ServingSpec(
        **{**spec.__dict__, "workload": overload_workload}
    )
    overload = ServingEngine(overload_spec, cache_enabled=True).run()
    return {
        "benchmark": "serving",
        "config": {
            "space": spec.space,
            "space_overrides": spec.space_overrides or {},
            "num_gpus": spec.num_gpus,
            "total_gpus": spec.total_gpus,
            "eval_batch": spec.eval_batch,
            "requests": spec.workload.num_requests,
            "arrival": spec.workload.arrival,
            "rate_rps": spec.workload.rate_rps,
            "skew": spec.workload.skew,
            "prefix_blocks": spec.workload.prefix_blocks,
            "repeat_fraction": spec.workload.repeat_fraction,
            "seed": spec.workload.seed,
            "max_batch": spec.policy.max_batch,
            "max_linger_ms": spec.policy.max_linger_ms,
            "queue_bound": spec.policy.queue_bound,
            "result_entries": spec.result_entries,
            "cache_subnets": spec.cache_subnets,
            "slo_ms": spec.slo_ms,
            "overload_rate_factor": spec.overload_rate_factor,
        },
        "primary": primary.scenario_report(),
        "no_cache": no_cache.scenario_report(),
        "overload": overload.scenario_report(),
    }


def write_bench(payload: Dict, path) -> str:
    return str(write_bench_json(payload, path))
