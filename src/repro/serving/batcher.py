"""Bounded batching with flow control for the serving front-end.

The shape is Beam's ``GroupIntoBatches`` streaming idiom: requests
queue until either ``max_batch`` of them are waiting or the oldest has
lingered ``max_linger_ms``, then the group is emitted as one batch.
Admission control is a hard bound on the **in-system backlog** — the
un-batched queue plus every admitted request whose batch has not
finished scoring.  Once that backlog reaches ``queue_bound``, further
arrivals are **shed** (rejected immediately) rather than queued into
unbounded latency; because the backlog at any arrival instant is a
pure function of the arrival sequence and the (deterministic) scoring
schedule, two runs of the same workload shed exactly the same request
ids in the same order.

The backlog bound also caps an admitted request's latency: it waits at
most ``max_linger_ms`` to join a batch plus at most
``queue_bound / max_batch`` batch services — which is what makes a
latency SLO for *admitted* requests honest under overload.

The batcher is a passive data structure driven by the front-end's
virtual clock; it never reads wall time.  Linger expiry is one timer
per admitted request (armed by the caller for ``arrival +
max_linger_ms``): when it fires and the request is still un-batched,
the front group flushes — so no request lingers past the window, and a
timer whose request already left is simply stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.serving.workload import EvalRequest

__all__ = ["BatchPolicy", "BoundedBatcher", "FormedBatch"]


@dataclass(frozen=True)
class BatchPolicy:
    """Batching and admission-control knobs."""

    max_batch: int = 8  # flush when this many requests wait
    max_linger_ms: float = 5.0  # ... or when the oldest waited this long
    queue_bound: int = 64  # shed once in-system backlog reaches this

    def validate(self) -> None:
        if self.max_batch <= 0:
            raise ConfigError(f"max_batch must be > 0, got {self.max_batch}")
        if self.max_linger_ms < 0:
            raise ConfigError(
                f"max_linger_ms must be >= 0, got {self.max_linger_ms}"
            )
        if self.queue_bound < self.max_batch:
            raise ConfigError(
                f"queue_bound {self.queue_bound} must be >= max_batch "
                f"{self.max_batch} (a full batch must be admittable)"
            )


@dataclass(frozen=True)
class FormedBatch:
    """One emitted batch: the requests plus why/when it formed."""

    index: int  # 0-based formation ordinal
    formed_ms: float
    cause: str  # "full" | "linger" | "drain"
    requests: tuple  # Tuple[EvalRequest, ...] in admission order
    oldest_wait_ms: float  # linger of the oldest member at formation

    def __len__(self) -> int:
        return len(self.requests)


class BoundedBatcher:
    """Deterministic bounded batching + admission control (one queue)."""

    def __init__(self, policy: BatchPolicy) -> None:
        policy.validate()
        self.policy = policy
        self._queue: List[EvalRequest] = []
        self._queued_at: List[float] = []
        self.admitted = 0
        self.shed = 0
        self.batches_formed = 0

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Un-batched requests currently queued."""
        return len(self._queue)

    def offer(self, request: EvalRequest, now: float, backlog: int) -> bool:
        """Admit ``request`` (True) or shed it at the bound (False).

        ``backlog`` is the caller's count of admitted-but-unfinished
        requests *outside* this queue (batches formed and waiting for,
        or on, the executor); the bound applies to the sum.
        """
        if len(self._queue) + backlog >= self.policy.queue_bound:
            self.shed += 1
            return False
        self._queue.append(request)
        self._queued_at.append(now)
        self.admitted += 1
        return True

    def requeue(
        self, requests: Sequence[EvalRequest], now: float, backlog: int
    ) -> "Tuple[List[EvalRequest], List[EvalRequest]]":
        """Re-admit dissolved in-flight requests at the **queue front**.

        Used when a lease revocation dissolves formed batches: their
        requests retry ahead of later arrivals, in the order given
        (executing batch first, admission order within a batch) — so the
        retry order is a pure function of the dissolution instant.  The
        ``queue_bound`` still applies: requests that no longer fit are
        shed, returned in the second list.  Retries do not re-count as
        admissions.
        """
        requeued: List[EvalRequest] = []
        shed: List[EvalRequest] = []
        for request in requests:
            if len(self._queue) + backlog >= self.policy.queue_bound:
                self.shed += 1
                shed.append(request)
                continue
            self._queue.insert(len(requeued), request)
            self._queued_at.insert(len(requeued), now)
            requeued.append(request)
        return requeued, shed

    def full(self) -> bool:
        return len(self._queue) >= self.policy.max_batch

    def contains(self, request_id: int) -> bool:
        return any(r.request_id == request_id for r in self._queue)

    # ------------------------------------------------------------------
    def _emit(self, count: int, now: float, cause: str) -> FormedBatch:
        taken = tuple(self._queue[:count])
        oldest = self._queued_at[0]
        del self._queue[:count]
        del self._queued_at[:count]
        batch = FormedBatch(
            index=self.batches_formed,
            formed_ms=now,
            cause=cause,
            requests=taken,
            oldest_wait_ms=now - oldest,
        )
        self.batches_formed += 1
        return batch

    def flush_full(self, now: float) -> Optional[FormedBatch]:
        """Emit a full batch if one is waiting."""
        if not self.full():
            return None
        return self._emit(self.policy.max_batch, now, "full")

    def flush_due(self, now: float, request_id: int) -> Optional[FormedBatch]:
        """Linger expiry for ``request_id``; stale timers return None.

        Fires the request's linger timer: if the request already left in
        an earlier batch there is nothing to do; otherwise the front
        group (which the request belongs to — timers fire in admission
        order) flushes now.
        """
        if not self.contains(request_id):
            return None
        count = min(len(self._queue), self.policy.max_batch)
        return self._emit(count, now, "linger")

    def drain(self, now: float) -> List[FormedBatch]:
        """Emit everything still queued (end of workload)."""
        batches: List[FormedBatch] = []
        while self._queue:
            count = min(len(self._queue), self.policy.max_batch)
            batches.append(self._emit(count, now, "drain"))
        return batches
