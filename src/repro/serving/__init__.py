"""Subnet-evaluation serving plane (``repro.serving``).

The trained supernet's consumers are architecture-search clients issuing
high volumes of subnet-evaluation queries (GreedyNAS-style loops filter
thousands of candidate paths).  This package opens that read-mostly,
latency-SLO workload on the simulated fleet:

* :mod:`repro.serving.workload` — seeded open-loop load generator
  (Poisson / bursty arrivals, shared-prefix skew, popular-subnet
  repeats);
* :mod:`repro.serving.batcher` — bounded batching with a linger window
  and deterministic load shedding once the queue passes a bound;
* :mod:`repro.serving.cache` — a result cache keyed by subnet digest
  plus shared-prefix reuse of resident layer blocks (the stage context
  manager repurposed read-mostly);
* :mod:`repro.serving.frontend` — the serving engine: leases GPUs from
  a :class:`~repro.service.manager.ClusterManager`, scores batches on
  the simulated pipeline, records per-request timestamps;
* :mod:`repro.serving.metrics` — nearest-rank latency percentiles,
  throughput / hit / shed / SLO stats, the canonical ``BENCH_serving``
  report, and its CI regression gate.

Everything is deterministic: identical configs produce byte-identical
reports (the ``serving-smoke`` CI job ``cmp``'s two runs).  See
``docs/SERVING.md``.
"""

from repro.serving.batcher import BatchPolicy, BoundedBatcher
from repro.serving.cache import LayerBlockCache, ResultCache, subnet_digest
from repro.serving.frontend import ServingEngine, ServingSpec, run_bench
from repro.serving.metrics import (
    check_regression,
    format_serving_report,
    nearest_rank,
    serving_report_json,
)
from repro.serving.workload import EvalRequest, WorkloadSpec, generate_requests

__all__ = [
    "BatchPolicy",
    "BoundedBatcher",
    "EvalRequest",
    "LayerBlockCache",
    "ResultCache",
    "ServingEngine",
    "ServingSpec",
    "WorkloadSpec",
    "check_regression",
    "format_serving_report",
    "generate_requests",
    "nearest_rank",
    "run_bench",
    "serving_report_json",
    "subnet_digest",
]
