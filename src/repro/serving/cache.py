"""Two-tier serving cache: result digests + resident layer blocks.

Tier 1 — :class:`ResultCache` — memoises finished evaluations by
**subnet digest** (SHA-256 over the space name and the full choice
tuple): a repeated query for a popular architecture is answered without
touching the fleet at all.  Eviction is LRU ordered by *virtual* access
time: entries move to the tail of an ``OrderedDict`` on every hit, so
the eviction order is a pure function of the request sequence — no wall
clock, no hash-order dependence.

Tier 2 — :class:`LayerBlockCache` — is the existing per-stage
:class:`~repro.core.context_manager.StageContextManager` repurposed
read-mostly: shared-prefix requests re-use layer blocks already
resident on the leased GPUs, paying PCIe copies only for the tail
blocks that differ.  Serving never writes parameters, so releases are
always clean (``dirty=False``) and eviction never pays write-back —
the read-mostly half of the training cache's contract.  Disabling the
tier (``enabled=False``) reclaims every stage cache after each batch,
which is exactly the "no reuse" baseline the benchmark compares
against.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context_manager import FetchPlan, StageContextManager
from repro.nn.parameter_store import LayerId
from repro.partition.balanced import Partition
from repro.supernet.subnet import Subnet

__all__ = ["LayerBlockCache", "ResultCache", "subnet_digest"]


def subnet_digest(space_name: str, subnet: Subnet) -> str:
    """Stable cache key for one architecture: space + full choice path.

    Independent of ``subnet_id`` (two users asking for the same path
    must hit the same entry) and of Python's per-process hash seed.
    """
    payload = space_name + ":" + "-".join(str(c) for c in subnet.choices)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Digest-keyed score memo with LRU-by-virtual-time eviction."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, digest: str) -> Optional[float]:
        """Look up a digest; a hit refreshes its LRU position."""
        if digest in self._entries:
            self._entries.move_to_end(digest)
            self.hits += 1
            return self._entries[digest]
        self.misses += 1
        return None

    def put(self, digest: str, score: float) -> None:
        if not self.enabled:
            return
        if digest in self._entries:
            self._entries.move_to_end(digest)
            self._entries[digest] = score
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[digest] = score

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LayerBlockCache:
    """Per-stage parameter residency for read-mostly batch scoring."""

    def __init__(
        self,
        contexts: Sequence[StageContextManager],
        partition: Partition,
        enabled: bool = True,
    ) -> None:
        self.contexts = list(contexts)
        self.partition = list(partition)
        self.enabled = enabled

    def stage_layers(self, subnet: Subnet, stage: int) -> Tuple[LayerId, ...]:
        start, stop = self.partition[stage]
        return subnet.layers_in_range(start, stop)

    def resident_before(self, subnet: Subnet, now: float) -> int:
        """Layers of ``subnet`` already resident across all stages —
        side-effect-free, so a batch's locality can be recorded without
        perturbing LRU order or hit counters."""
        return sum(
            context.peek_residency(self.stage_layers(subnet, stage), now)[0]
            for stage, context in enumerate(self.contexts)
        )

    def acquire(self, subnet: Subnet, stage: int, now: float) -> FetchPlan:
        context = self.contexts[stage]
        return context.acquire_for_task(self.stage_layers(subnet, stage), now)

    def release(self, subnet: Subnet, stage: int, now: float) -> None:
        # Read-mostly: scoring never updates parameters, so nothing is
        # ever dirty and eviction stays write-back-free.
        self.contexts[stage].release_after_task(
            self.stage_layers(subnet, stage), now, dirty=False
        )

    def prefetch(self, subnet: Subnet, now: float) -> float:
        """Warm every stage's share of ``subnet``; returns ready time."""
        ready = now
        for stage, context in enumerate(self.contexts):
            ready = max(
                ready, context.prefetch(self.stage_layers(subnet, stage), now)
            )
        return ready

    def after_batch(self, now: float) -> None:
        """Post-batch hook: with the tier disabled, drop all residency
        so the next batch re-pays every copy (the no-reuse baseline)."""
        if not self.enabled:
            for context in self.contexts:
                context.reclaim(now)

    # ------------------------------------------------------------------
    def hits(self) -> int:
        return sum(context.hits for context in self.contexts)

    def misses(self) -> int:
        return sum(context.misses for context in self.contexts)

    def hit_rate(self) -> float:
        total = self.hits() + self.misses()
        return self.hits() / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits(),
            "misses": self.misses(),
            "fetch_bytes": sum(c.fetch_bytes for c in self.contexts),
            "peak_resident_bytes": max(
                (c.peak_resident_bytes for c in self.contexts), default=0
            ),
            "resident_layers": sum(
                c.resident_layer_count() for c in self.contexts
            ),
        }
